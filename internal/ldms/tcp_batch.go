package ldms

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"darshanldms/internal/event"
	"darshanldms/internal/jsonmsg"
	"darshanldms/internal/streams"
)

// Batched TCP frames carry many stream messages in one length-prefixed
// frame, amortizing the per-frame envelope and syscall cost. A batch
// frame is discriminated from the legacy single-message frame by its
// first byte: legacy frames start with the high byte of a 4-byte
// big-endian length bounded by maxFrame (16 MiB), which is always 0x00
// or 0x01, so batchMagic can never be confused for one. Both kinds may
// interleave on a single connection; ReadAnyFrame dispatches per frame.
//
// Layout:
//
//	byte 0      batchMagic (0xBB)
//	byte 1      batchVersion
//	bytes 2..5  big-endian payload length (bounded by maxFrame)
//	payload     uvarint record count, then per record:
//	            kind byte (recOpaque | recTyped)
//	            tag string, type uvarint, producer string, seq uvarint
//	            recTyped:  compact binary record (event.AppendMessage)
//	            recOpaque: uvarint length + payload bytes
//
// Typed records whose fields are materialized travel in the compact
// binary form — no JSON is produced on either side; records that only
// have bytes (raw publishers, lossy-encoder placeholders) travel opaque.
const (
	batchMagic   = 0xBB
	batchVersion = 1

	recOpaque = 0
	recTyped  = 1
)

// minBatchRec is the smallest possible encoded record (kind byte plus
// five single-byte envelope fields); declared counts are capped against
// it so a hostile header cannot cause a huge preallocation.
const minBatchRec = 6

// framePool recycles batch frame scratch buffers; steady-state batching
// does not allocate a frame buffer per flush.
var framePool event.BufferPool

// slabPool recycles decode slabs for the batched receive path; every
// frame decoded through a BatchDecoder borrows one slab and the caller
// releases it when the frame's messages have been handed off.
var slabPool event.SlabPool

// FramePoolCounters exposes the scratch buffer pool's Get/Put counts for
// leak assertions in tests.
func FramePoolCounters() (gets, puts uint64) { return framePool.Counters() }

// SlabPoolCounters exposes the decode slab pool's Get/return counts for
// leak assertions in tests.
func SlabPoolCounters() (gets, puts uint64) { return slabPool.Counters() }

// appendBatchString appends a length-prefixed string.
func appendBatchString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBatch appends the batch payload (count + records, no frame
// header) for msgs to b and returns the extended slice.
func AppendBatch(b []byte, msgs []streams.Message) []byte {
	b = binary.AppendUvarint(b, uint64(len(msgs)))
	for i := range msgs {
		m := &msgs[i]
		var fields *jsonmsg.Message
		if r, ok := m.Record.(*event.Record); ok {
			fields = r.TypedFields()
		}
		if fields != nil {
			b = append(b, recTyped)
			b = appendBatchString(b, m.Tag)
			b = binary.AppendUvarint(b, uint64(m.Type))
			b = appendBatchString(b, m.Producer)
			b = binary.AppendUvarint(b, m.Seq)
			b = event.AppendMessage(b, fields)
			continue
		}
		b = append(b, recOpaque)
		b = appendBatchString(b, m.Tag)
		b = binary.AppendUvarint(b, uint64(m.Type))
		b = appendBatchString(b, m.Producer)
		b = binary.AppendUvarint(b, m.Seq)
		payload := m.Payload()
		b = binary.AppendUvarint(b, uint64(len(payload)))
		b = append(b, payload...)
	}
	return b
}

// WriteBatchFrame writes msgs as one batch frame. An empty batch is
// rejected, mirroring WriteFrame's zero-length rule.
func WriteBatchFrame(w io.Writer, msgs []streams.Message) error {
	if len(msgs) == 0 {
		return errors.New("ldms: empty batch frame")
	}
	buf := framePool.Get()
	buf = append(buf, batchMagic, batchVersion, 0, 0, 0, 0)
	buf = AppendBatch(buf, msgs)
	payloadLen := len(buf) - 6
	if payloadLen > maxFrame {
		framePool.Put(buf)
		return fmt.Errorf("ldms: batch frame too large (%d bytes)", payloadLen)
	}
	binary.BigEndian.PutUint32(buf[2:6], uint32(payloadLen))
	_, err := w.Write(buf)
	framePool.Put(buf)
	return err
}

// DecodeBatch parses a batch payload (as laid out by AppendBatch) into
// stream messages. Received typed records become typed-first
// event.Records (their JSON is produced lazily, if ever); opaque records
// become bytes-first event.Records so downstream consumers share one
// cached parse.
func DecodeBatch(payload []byte) ([]streams.Message, error) {
	off := 0
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return 0, event.ErrTruncated
		}
		off += n
		return v, nil
	}
	str := func() (string, error) {
		n, err := uvarint()
		if err != nil {
			return "", err
		}
		if n > uint64(len(payload)-off) {
			return "", event.ErrTruncated
		}
		s := string(payload[off : off+int(n)])
		off += int(n)
		return s, nil
	}
	count, err := uvarint()
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, errors.New("ldms: empty batch frame")
	}
	if count > uint64(len(payload)-off)/minBatchRec+1 {
		return nil, fmt.Errorf("ldms: batch declares %d records in %d bytes", count, len(payload))
	}
	out := make([]streams.Message, 0, count)
	for i := uint64(0); i < count; i++ {
		if off >= len(payload) {
			return nil, event.ErrTruncated
		}
		kind := payload[off]
		off++
		var m streams.Message
		if m.Tag, err = str(); err != nil {
			return nil, err
		}
		typ, err := uvarint()
		if err != nil {
			return nil, err
		}
		m.Type = streams.MsgType(typ)
		if m.Producer, err = str(); err != nil {
			return nil, err
		}
		if m.Seq, err = uvarint(); err != nil {
			return nil, err
		}
		switch kind {
		case recTyped:
			msg, n, err := event.DecodeMessage(payload[off:])
			if err != nil {
				return nil, err
			}
			off += n
			m.Record = event.NewRecord(msg, nil)
		case recOpaque:
			n, err := uvarint()
			if err != nil {
				return nil, err
			}
			if n > uint64(len(payload)-off) {
				return nil, event.ErrTruncated
			}
			m.Data = append([]byte(nil), payload[off:off+int(n)]...)
			off += int(n)
			if m.Type == streams.TypeJSON && n > 0 {
				m.Record = event.FromPayload(m.Data)
			}
		default:
			return nil, fmt.Errorf("ldms: unknown batch record kind %d", kind)
		}
		out = append(out, m)
	}
	if off != len(payload) {
		return nil, fmt.Errorf("ldms: %d trailing bytes after batch", len(payload)-off)
	}
	return out, nil
}

// ReadBatchFrame reads one batch frame (the magic byte has already been
// peeked, not consumed).
func ReadBatchFrame(r io.Reader) ([]streams.Message, error) {
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != batchMagic {
		return nil, fmt.Errorf("ldms: not a batch frame (0x%02x)", hdr[0])
	}
	if hdr[1] != batchVersion {
		return nil, fmt.Errorf("ldms: unsupported batch version %d", hdr[1])
	}
	n := binary.BigEndian.Uint32(hdr[2:6])
	if n == 0 {
		return nil, errors.New("ldms: zero-length batch frame")
	}
	if n > maxFrame {
		return nil, fmt.Errorf("ldms: oversized batch frame (%d bytes)", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return DecodeBatch(payload)
}

// ReadAnyFrame reads the next frame, legacy or batch, returning its
// messages. It needs a *bufio.Reader to peek the discriminating byte.
func ReadAnyFrame(br *bufio.Reader) ([]streams.Message, error) {
	first, err := br.Peek(1)
	if err != nil {
		return nil, err
	}
	if first[0] == batchMagic {
		return ReadBatchFrame(br)
	}
	m, err := ReadFrame(br)
	if err != nil {
		return nil, err
	}
	return []streams.Message{m}, nil
}

// BatchDecoder is the zero-alloc receive side of the batched wire path:
// one per connection (it is not safe for concurrent use). It owns a
// string interner — the repetitive Table I fields stop allocating after
// the first few frames — and a reusable payload scratch buffer; decoded
// structs and slices live in a pooled Slab whose reference the caller
// holds and must Release once the frame's messages are handed off.
// Synchronous consumers need nothing more; consumers that queue a
// message past the hand-off detach it first (streams.Detach).
type BatchDecoder struct {
	in      *event.Interner
	payload []byte
}

// NewBatchDecoder returns a decoder with a fresh interner.
func NewBatchDecoder() *BatchDecoder {
	return &BatchDecoder{in: event.NewInterner()}
}

// batchReader walks a batch payload with sticky-error methods (the
// closure-based cursor in DecodeBatch costs two allocations per call;
// the method form costs none).
type batchReader struct {
	b   []byte
	off int
	err error
}

func (r *batchReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = event.ErrTruncated
		return 0
	}
	r.off += n
	return v
}

func (r *batchReader) str(in *event.Interner) string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.err = event.ErrTruncated
		return ""
	}
	s := in.Intern(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// DecodeBatchSlab parses a batch payload into slab-owned stream
// messages: the out-slice, record wrappers, message structs and segment
// arrays all come from slab; envelope and field strings are interned.
// Opaque records still copy their payload bytes to the heap — raw bytes
// have no typed lifecycle and downstream (durable streams) retains them.
// The messages are valid only while slab is retained.
func (d *BatchDecoder) DecodeBatchSlab(payload []byte, slab *event.Slab) ([]streams.Message, error) {
	r := batchReader{b: payload}
	count := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if count == 0 {
		return nil, errors.New("ldms: empty batch frame")
	}
	if count > uint64(len(payload)-r.off)/minBatchRec+1 {
		return nil, fmt.Errorf("ldms: batch declares %d records in %d bytes", count, len(payload))
	}
	out := slab.Out(int(count))
	for i := uint64(0); i < count; i++ {
		if r.off >= len(payload) {
			return nil, event.ErrTruncated
		}
		kind := payload[r.off]
		r.off++
		var m streams.Message
		m.Tag = r.str(d.in)
		m.Type = streams.MsgType(r.uvarint())
		m.Producer = r.str(d.in)
		m.Seq = r.uvarint()
		if r.err != nil {
			return nil, r.err
		}
		switch kind {
		case recTyped:
			msg, n, err := event.DecodeMessageSlab(payload[r.off:], slab, d.in)
			if err != nil {
				return nil, err
			}
			r.off += n
			m.Record = slab.Wrap(msg, nil)
		case recOpaque:
			n := r.uvarint()
			if r.err != nil {
				return nil, r.err
			}
			if n > uint64(len(payload)-r.off) {
				return nil, event.ErrTruncated
			}
			m.Data = append([]byte(nil), payload[r.off:r.off+int(n)]...)
			r.off += int(n)
			if m.Type == streams.TypeJSON && n > 0 {
				m.Record = event.FromPayload(m.Data)
			}
		default:
			return nil, fmt.Errorf("ldms: unknown batch record kind %d", kind)
		}
		out = append(out, m)
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("ldms: %d trailing bytes after batch", len(payload)-r.off)
	}
	return out, nil
}

// ReadBatchFrameSlab reads one batch frame into a pooled slab. On
// success the caller holds the slab's reference and must Release it
// after the messages are handed off; on error no slab is returned. The
// frame payload is read into the decoder's reusable scratch buffer —
// nothing decoded references it afterward (strings are interned copies,
// opaque payloads are copied out).
func (d *BatchDecoder) ReadBatchFrameSlab(r io.Reader) ([]streams.Message, *event.Slab, error) {
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, err
	}
	if hdr[0] != batchMagic {
		return nil, nil, fmt.Errorf("ldms: not a batch frame (0x%02x)", hdr[0])
	}
	if hdr[1] != batchVersion {
		return nil, nil, fmt.Errorf("ldms: unsupported batch version %d", hdr[1])
	}
	n := binary.BigEndian.Uint32(hdr[2:6])
	if n == 0 {
		return nil, nil, errors.New("ldms: zero-length batch frame")
	}
	if n > maxFrame {
		return nil, nil, fmt.Errorf("ldms: oversized batch frame (%d bytes)", n)
	}
	if cap(d.payload) < int(n) {
		d.payload = make([]byte, n)
	}
	payload := d.payload[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, nil, err
	}
	slab := slabPool.Get()
	msgs, err := d.DecodeBatchSlab(payload, slab)
	if err != nil {
		slab.Release()
		return nil, nil, err
	}
	return msgs, slab, nil
}

// ReadAnyFrameSlab reads the next frame, legacy or batch, into a pooled
// slab (a legacy frame's single message is placed in a slab out-slice so
// the caller's release discipline is uniform). The caller must Release
// the slab after handing the messages off.
func (d *BatchDecoder) ReadAnyFrameSlab(br *bufio.Reader) ([]streams.Message, *event.Slab, error) {
	first, err := br.Peek(1)
	if err != nil {
		return nil, nil, err
	}
	if first[0] == batchMagic {
		return d.ReadBatchFrameSlab(br)
	}
	m, err := ReadFrame(br)
	if err != nil {
		return nil, nil, err
	}
	slab := slabPool.Get()
	msgs := append(slab.Out(1), m)
	return msgs, slab, nil
}

// PublishBatch sends msgs as a single batch frame.
func (c *TCPClient) PublishBatch(msgs []streams.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return errors.New("ldms: client closed")
	}
	if err := WriteBatchFrame(c.bw, msgs); err != nil {
		return err
	}
	c.batchFrames.Add(1)
	return c.bw.Flush()
}
