package ldms

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"darshanldms/internal/event"
	"darshanldms/internal/streams"
)

// Batched TCP frames carry many stream messages in one length-prefixed
// frame, amortizing the per-frame envelope and syscall cost. A batch
// frame is discriminated from the legacy single-message frame by its
// first byte: legacy frames start with the high byte of a 4-byte
// big-endian length bounded by maxFrame (16 MiB), which is always 0x00
// or 0x01, so batchMagic can never be confused for one. Both kinds may
// interleave on a single connection; ReadAnyFrame dispatches per frame.
//
// Layout:
//
//	byte 0      batchMagic (0xBB)
//	byte 1      batchVersion
//	bytes 2..5  big-endian payload length (bounded by maxFrame)
//	payload     uvarint record count, then per record:
//	            kind byte (recOpaque | recTyped)
//	            tag string, type uvarint, producer string, seq uvarint
//	            recTyped:  compact binary record (event.AppendMessage)
//	            recOpaque: uvarint length + payload bytes
//
// Typed records whose fields are materialized travel in the compact
// binary form — no JSON is produced on either side; records that only
// have bytes (raw publishers, lossy-encoder placeholders) travel opaque.
const (
	batchMagic   = 0xBB
	batchVersion = 1

	recOpaque = 0
	recTyped  = 1
)

// minBatchRec is the smallest possible encoded record (kind byte plus
// five single-byte envelope fields); declared counts are capped against
// it so a hostile header cannot cause a huge preallocation.
const minBatchRec = 6

// framePool recycles batch frame scratch buffers; steady-state batching
// does not allocate a frame buffer per flush.
var framePool event.BufferPool

// FramePoolCounters exposes the scratch buffer pool's Get/Put counts for
// leak assertions in tests.
func FramePoolCounters() (gets, puts uint64) { return framePool.Counters() }

// appendBatchString appends a length-prefixed string.
func appendBatchString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBatch appends the batch payload (count + records, no frame
// header) for msgs to b and returns the extended slice.
func AppendBatch(b []byte, msgs []streams.Message) []byte {
	b = binary.AppendUvarint(b, uint64(len(msgs)))
	for i := range msgs {
		m := &msgs[i]
		var typed *event.Record
		if r, ok := m.Record.(*event.Record); ok {
			typed = r
		}
		if typed != nil && typed.TypedFields() != nil {
			b = append(b, recTyped)
			b = appendBatchString(b, m.Tag)
			b = binary.AppendUvarint(b, uint64(m.Type))
			b = appendBatchString(b, m.Producer)
			b = binary.AppendUvarint(b, m.Seq)
			b = event.AppendMessage(b, typed.TypedFields())
			continue
		}
		b = append(b, recOpaque)
		b = appendBatchString(b, m.Tag)
		b = binary.AppendUvarint(b, uint64(m.Type))
		b = appendBatchString(b, m.Producer)
		b = binary.AppendUvarint(b, m.Seq)
		payload := m.Payload()
		b = binary.AppendUvarint(b, uint64(len(payload)))
		b = append(b, payload...)
	}
	return b
}

// WriteBatchFrame writes msgs as one batch frame. An empty batch is
// rejected, mirroring WriteFrame's zero-length rule.
func WriteBatchFrame(w io.Writer, msgs []streams.Message) error {
	if len(msgs) == 0 {
		return errors.New("ldms: empty batch frame")
	}
	buf := framePool.Get()
	defer func() { framePool.Put(buf) }()
	buf = append(buf, batchMagic, batchVersion, 0, 0, 0, 0)
	buf = AppendBatch(buf, msgs)
	payloadLen := len(buf) - 6
	if payloadLen > maxFrame {
		return fmt.Errorf("ldms: batch frame too large (%d bytes)", payloadLen)
	}
	binary.BigEndian.PutUint32(buf[2:6], uint32(payloadLen))
	_, err := w.Write(buf)
	return err
}

// DecodeBatch parses a batch payload (as laid out by AppendBatch) into
// stream messages. Received typed records become typed-first
// event.Records (their JSON is produced lazily, if ever); opaque records
// become bytes-first event.Records so downstream consumers share one
// cached parse.
func DecodeBatch(payload []byte) ([]streams.Message, error) {
	off := 0
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return 0, event.ErrTruncated
		}
		off += n
		return v, nil
	}
	str := func() (string, error) {
		n, err := uvarint()
		if err != nil {
			return "", err
		}
		if n > uint64(len(payload)-off) {
			return "", event.ErrTruncated
		}
		s := string(payload[off : off+int(n)])
		off += int(n)
		return s, nil
	}
	count, err := uvarint()
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, errors.New("ldms: empty batch frame")
	}
	if count > uint64(len(payload)-off)/minBatchRec+1 {
		return nil, fmt.Errorf("ldms: batch declares %d records in %d bytes", count, len(payload))
	}
	out := make([]streams.Message, 0, count)
	for i := uint64(0); i < count; i++ {
		if off >= len(payload) {
			return nil, event.ErrTruncated
		}
		kind := payload[off]
		off++
		var m streams.Message
		if m.Tag, err = str(); err != nil {
			return nil, err
		}
		typ, err := uvarint()
		if err != nil {
			return nil, err
		}
		m.Type = streams.MsgType(typ)
		if m.Producer, err = str(); err != nil {
			return nil, err
		}
		if m.Seq, err = uvarint(); err != nil {
			return nil, err
		}
		switch kind {
		case recTyped:
			msg, n, err := event.DecodeMessage(payload[off:])
			if err != nil {
				return nil, err
			}
			off += n
			m.Record = event.NewRecord(msg, nil)
		case recOpaque:
			n, err := uvarint()
			if err != nil {
				return nil, err
			}
			if n > uint64(len(payload)-off) {
				return nil, event.ErrTruncated
			}
			m.Data = append([]byte(nil), payload[off:off+int(n)]...)
			off += int(n)
			if m.Type == streams.TypeJSON && n > 0 {
				m.Record = event.FromPayload(m.Data)
			}
		default:
			return nil, fmt.Errorf("ldms: unknown batch record kind %d", kind)
		}
		out = append(out, m)
	}
	if off != len(payload) {
		return nil, fmt.Errorf("ldms: %d trailing bytes after batch", len(payload)-off)
	}
	return out, nil
}

// ReadBatchFrame reads one batch frame (the magic byte has already been
// peeked, not consumed).
func ReadBatchFrame(r io.Reader) ([]streams.Message, error) {
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != batchMagic {
		return nil, fmt.Errorf("ldms: not a batch frame (0x%02x)", hdr[0])
	}
	if hdr[1] != batchVersion {
		return nil, fmt.Errorf("ldms: unsupported batch version %d", hdr[1])
	}
	n := binary.BigEndian.Uint32(hdr[2:6])
	if n == 0 {
		return nil, errors.New("ldms: zero-length batch frame")
	}
	if n > maxFrame {
		return nil, fmt.Errorf("ldms: oversized batch frame (%d bytes)", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return DecodeBatch(payload)
}

// ReadAnyFrame reads the next frame, legacy or batch, returning its
// messages. It needs a *bufio.Reader to peek the discriminating byte.
func ReadAnyFrame(br *bufio.Reader) ([]streams.Message, error) {
	first, err := br.Peek(1)
	if err != nil {
		return nil, err
	}
	if first[0] == batchMagic {
		return ReadBatchFrame(br)
	}
	m, err := ReadFrame(br)
	if err != nil {
		return nil, err
	}
	return []streams.Message{m}, nil
}

// PublishBatch sends msgs as a single batch frame.
func (c *TCPClient) PublishBatch(msgs []streams.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return errors.New("ldms: client closed")
	}
	if err := WriteBatchFrame(c.bw, msgs); err != nil {
		return err
	}
	c.batchFrames.Add(1)
	return c.bw.Flush()
}
