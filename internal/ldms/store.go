package ldms

import (
	"bufio"
	"io"
	"sync"

	"darshanldms/internal/dsos"
	"darshanldms/internal/event"
	"darshanldms/internal/jsonmsg"
	"darshanldms/internal/obs"
	"darshanldms/internal/sos"
	"darshanldms/internal/streams"
)

// StorePlugin consumes stream messages at the final aggregation level.
type StorePlugin interface {
	Name() string
	Store(m streams.Message) error
}

// AttachStore subscribes a store plugin to a tag on the daemon's bus.
// Store errors are counted, not propagated — LDMS storage is best-effort.
func (d *Daemon) AttachStore(tag string, s StorePlugin) *StoreHandle {
	h := &StoreHandle{plugin: s}
	h.sub = d.bus.Subscribe(tag, func(m streams.Message) {
		h.mu.Lock()
		defer h.mu.Unlock()
		h.received++
		if err := s.Store(m); err != nil {
			h.errors++
			h.lastErr = err
		}
	})
	return h
}

// StoreHandle tracks one attached store.
type StoreHandle struct {
	plugin   StorePlugin
	sub      *streams.Subscription
	mu       sync.Mutex
	received uint64
	errors   uint64
	lastErr  error
}

// Received returns the number of messages delivered to the store.
func (h *StoreHandle) Received() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.received
}

// Errors returns the number of failed stores and the last error.
func (h *StoreHandle) Errors() (uint64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.errors, h.lastErr
}

// Close detaches the store from the bus.
func (h *StoreHandle) Close() { h.sub.Close() }

// CountStore counts messages and discards payloads (used by the overhead
// campaigns, which need message counts and rates but not retained data).
type CountStore struct {
	mu    sync.Mutex
	count uint64
	bytes uint64
}

// Name implements StorePlugin.
func (c *CountStore) Name() string { return "store_count" }

// Store implements StorePlugin. Only materialized payload bytes are
// counted — a typed record that nothing has JSON-encoded contributes 0,
// deliberately: forcing the encode just to count it would undo the lazy
// plane for every overhead campaign that uses this store.
func (c *CountStore) Store(m streams.Message) error {
	c.mu.Lock()
	c.count++
	if m.Data != nil {
		c.bytes += uint64(len(m.Data))
	} else if r, ok := m.Record.(*event.Record); ok && r.Encoded() {
		c.bytes += uint64(len(r.Payload()))
	}
	c.mu.Unlock()
	return nil
}

// Count returns messages seen.
func (c *CountStore) Count() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Bytes returns payload bytes seen.
func (c *CountStore) Bytes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// CSVStore renders connector messages into the Fig 3 CSV layout. Typed
// records feed the CSV writer directly from their fields; only raw JSON
// payloads (legacy peers, PublishJSON) are parsed.
type CSVStore struct {
	mu     sync.Mutex
	w      *bufio.Writer
	header bool
}

// NewCSVStore creates a CSV store writing to w.
func NewCSVStore(w io.Writer) *CSVStore {
	return &CSVStore{w: bufio.NewWriter(w)}
}

// Name implements StorePlugin.
func (s *CSVStore) Name() string { return "store_csv" }

// Store implements StorePlugin.
func (s *CSVStore) Store(m streams.Message) error {
	msg, err := event.Fields(m)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.header {
		if _, err := s.w.WriteString(jsonmsg.CSVHeader + "\n"); err != nil {
			return err
		}
		s.header = true
	}
	for _, row := range msg.CSVRows() {
		if _, err := s.w.WriteString(row + "\n"); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered rows.
func (s *CSVStore) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// DSOSStore inserts connector messages into a DSOS cluster (the paper's
// storage path). Typed records are ingested straight from their fields —
// the old parse-at-store hop (encode at the connector, re-parse the same
// bytes here) is gone; raw JSON payloads still parse as before. Each
// message's rows go down as one batch insert.
type DSOSStore struct {
	client *dsos.Client
	mu     sync.Mutex
	objs   []sos.Object   // reused per-message object batch
	arena  *dsos.RowArena // row backings + cached boxes (guarded by mu)
	// Obs plane (set by Instrument; nil-safe counters otherwise).
	clock   obs.Clock
	msgs    *obs.Counter
	objects *obs.Counter
	errs    *obs.Counter
}

// hopStore names the DSOS ingest stage in record traces.
const hopStore = "store"

// NewDSOSStore creates the store plugin over a connected client.
func NewDSOSStore(client *dsos.Client) *DSOSStore {
	return &DSOSStore{client: client, arena: dsos.NewRowArena()}
}

// Name implements StorePlugin.
func (s *DSOSStore) Name() string { return "store_dsos" }

// Store implements StorePlugin.
func (s *DSOSStore) Store(m streams.Message) error {
	msg, err := event.Fields(m)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.clock != nil {
		if st, ok := m.Record.(streams.Stamper); ok {
			st.Stamp(hopStore, s.clock())
		}
	}
	// Rows come from the store's arena: shared []any backings and cached
	// boxes, so steady-state ingest of repeated values stops allocating.
	// The message may be slab-backed — that is fine, the arena copies
	// every value it reads and the insert below is synchronous.
	s.objs = s.arena.AppendObjects(s.objs[:0], msg)
	err = s.client.InsertBatch(dsos.DarshanSchemaName, s.objs)
	s.msgs.Inc()
	s.objects.Add(uint64(len(s.objs)))
	if err != nil {
		s.errs.Inc()
	}
	return err
}
