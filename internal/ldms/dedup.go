package ldms

import (
	"sync"

	"darshanldms/internal/obs"
	"darshanldms/internal/streams"
)

// DedupStore makes an at-least-once ingest path exactly-once: the
// connector stamps every message with a (producer, seq) identity, and this
// wrapper drops any identity it has already stored. Reconnect replays
// (ReconnectingForwarder re-sending its tail) and fault-link spool replays
// then become idempotent instead of double-inserting.
//
// A duplicate is acked (Store returns nil) without reaching the inner
// plugin — the original delivery already stored it. Unstamped messages
// (no producer or seq) pass through untouched, preserving the default
// pipeline's behavior bit-for-bit.
//
// The identity rides out-of-band on the streams message, so dedup never
// touches the payload: typed records pass through without being encoded
// or parsed, and a batch-frame replay dedups per record exactly like the
// legacy frame-per-message replay.
//
// The identity is remembered in a per-producer seen-set, not a high-water
// mark: latency spikes can reorder fresh messages across hops, and a
// high-water mark would misclassify a late-but-new message as a replay.
type DedupStore struct {
	inner StorePlugin

	mu         sync.Mutex
	seen       map[string]map[uint64]struct{}
	duplicates uint64
	stored     uint64
	unstamped  uint64
	clock      obs.Clock // set by Instrument: stamps the "dedup" trace hop
}

// hopDedup names the dedup stage in record traces.
const hopDedup = "dedup"

// NewDedupStore wraps inner with (producer, seq) deduplication.
func NewDedupStore(inner StorePlugin) *DedupStore {
	return &DedupStore{inner: inner, seen: map[string]map[uint64]struct{}{}}
}

// Name implements StorePlugin.
func (s *DedupStore) Name() string { return "dedup(" + s.inner.Name() + ")" }

// Store implements StorePlugin. The lock is held across the inner call so
// two concurrent deliveries of the same identity cannot both pass the
// check — the store chain is serialized by AttachStore anyway, so this
// costs nothing in the pipeline.
func (s *DedupStore) Store(m streams.Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.clock != nil {
		if st, ok := m.Record.(streams.Stamper); ok {
			st.Stamp(hopDedup, s.clock())
		}
	}
	if m.Producer == "" || m.Seq == 0 {
		s.unstamped++
		return s.inner.Store(m)
	}
	if _, dup := s.seen[m.Producer][m.Seq]; dup {
		s.duplicates++
		return nil
	}
	if err := s.inner.Store(m); err != nil {
		// Not marked seen: the retry that follows is a fresh attempt, not
		// a replay, and must reach the inner store again.
		return err
	}
	set := s.seen[m.Producer]
	if set == nil {
		set = map[uint64]struct{}{}
		s.seen[m.Producer] = set
	}
	set[m.Seq] = struct{}{}
	s.stored++
	return nil
}

// Duplicates returns how many stamped messages were suppressed as
// replays.
func (s *DedupStore) Duplicates() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.duplicates
}

// Stored returns how many stamped messages reached the inner store.
func (s *DedupStore) Stored() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stored
}

// Unstamped returns how many messages passed through without an identity.
func (s *DedupStore) Unstamped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.unstamped
}

// Seen reports whether the identity has been stored already.
func (s *DedupStore) Seen(producer string, seq uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.seen[producer][seq]
	return ok
}
