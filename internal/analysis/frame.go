// Package analysis is the Go equivalent of the paper's Python analysis
// modules: queried DSOS objects are converted into a small typed dataframe
// for filtering/grouping/aggregation, and figure-specific modules derive
// exactly the datasets behind Figures 5-9.
package analysis

import (
	"fmt"
	"sort"

	"darshanldms/internal/sos"
)

// Frame is a column-oriented table (a pandas-dataframe-lite): ordered
// column names, each column a []any of one sos value type.
type Frame struct {
	names []string
	cols  map[string][]any
	rows  int
}

// NewFrame creates an empty frame with the given column names.
func NewFrame(names ...string) *Frame {
	f := &Frame{names: names, cols: map[string][]any{}}
	for _, n := range names {
		f.cols[n] = nil
	}
	return f
}

// FromObjects builds a frame from store objects using the schema's
// attribute names as columns.
func FromObjects(schema *sos.Schema, objs []sos.Object) *Frame {
	names := make([]string, len(schema.Attrs))
	for i, a := range schema.Attrs {
		names[i] = a.Name
	}
	f := NewFrame(names...)
	for _, o := range objs {
		for i, n := range names {
			f.cols[n] = append(f.cols[n], o[i])
		}
	}
	f.rows = len(objs)
	return f
}

// Len returns the number of rows.
func (f *Frame) Len() int { return f.rows }

// Columns returns the column names in order.
func (f *Frame) Columns() []string { return f.names }

// AppendRow adds one row; values must align with the column order.
func (f *Frame) AppendRow(vals ...any) {
	if len(vals) != len(f.names) {
		panic(fmt.Sprintf("analysis: row arity %d vs %d columns", len(vals), len(f.names)))
	}
	for i, n := range f.names {
		f.cols[n] = append(f.cols[n], vals[i])
	}
	f.rows++
}

// Value returns the cell at (row, col).
func (f *Frame) Value(row int, col string) any { return f.cols[col][row] }

// Float64s extracts a column as float64 (int64/uint64 are widened).
func (f *Frame) Float64s(col string) []float64 {
	raw, ok := f.cols[col]
	if !ok {
		panic("analysis: unknown column " + col)
	}
	out := make([]float64, len(raw))
	for i, v := range raw {
		switch x := v.(type) {
		case float64:
			out[i] = x
		case int64:
			out[i] = float64(x)
		case uint64:
			out[i] = float64(x)
		default:
			panic(fmt.Sprintf("analysis: column %s: non-numeric %T", col, v))
		}
	}
	return out
}

// Strings extracts a column as strings.
func (f *Frame) Strings(col string) []string {
	raw, ok := f.cols[col]
	if !ok {
		panic("analysis: unknown column " + col)
	}
	out := make([]string, len(raw))
	for i, v := range raw {
		out[i] = v.(string)
	}
	return out
}

// Filter returns the rows for which keep is true.
func (f *Frame) Filter(keep func(row int) bool) *Frame {
	out := NewFrame(f.names...)
	for i := 0; i < f.rows; i++ {
		if !keep(i) {
			continue
		}
		for _, n := range f.names {
			out.cols[n] = append(out.cols[n], f.cols[n][i])
		}
		out.rows++
	}
	return out
}

// GroupKey is a composite group identifier rendered as a string.
type GroupKey string

// GroupBy partitions row indices by the values of the given columns.
func (f *Frame) GroupBy(cols ...string) map[GroupKey][]int {
	groups := map[GroupKey][]int{}
	for i := 0; i < f.rows; i++ {
		key := ""
		for _, c := range cols {
			key += fmt.Sprintf("%v|", f.cols[c][i])
		}
		groups[GroupKey(key)] = append(groups[GroupKey(key)], i)
	}
	return groups
}

// GroupCount returns per-group row counts keyed by the (single) group
// column's rendered value, sorted output via SortedKeys.
func (f *Frame) GroupCount(col string) map[string]int {
	out := map[string]int{}
	for i := 0; i < f.rows; i++ {
		out[fmt.Sprintf("%v", f.cols[col][i])]++
	}
	return out
}

// GroupMean returns the mean of valueCol per group of byCol.
func (f *Frame) GroupMean(byCol, valueCol string) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	vals := f.Float64s(valueCol)
	for i := 0; i < f.rows; i++ {
		k := fmt.Sprintf("%v", f.cols[byCol][i])
		sums[k] += vals[i]
		counts[k]++
	}
	out := map[string]float64{}
	for k, s := range sums {
		out[k] = s / float64(counts[k])
	}
	return out
}

// GroupSum returns the sum of valueCol per group of byCol.
func (f *Frame) GroupSum(byCol, valueCol string) map[string]float64 {
	out := map[string]float64{}
	vals := f.Float64s(valueCol)
	for i := 0; i < f.rows; i++ {
		out[fmt.Sprintf("%v", f.cols[byCol][i])] += vals[i]
	}
	return out
}

// SortedKeys returns map keys in sorted order (stable report output).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
