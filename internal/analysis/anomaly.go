package analysis

import (
	"fmt"
	"math"

	"darshanldms/internal/dsos"
	"darshanldms/internal/stats"
)

// LoadSample is one background-load observation (from the LDMS fsload
// sampler) used for I/O-vs-system correlation.
type LoadSample struct {
	Time float64 // seconds
	Load float64 // load factor, 1.0 nominal
}

// CorrelateLoad computes the Pearson correlation between a job's I/O
// operation durations and the system load at the time of each operation
// (nearest-sample alignment). A strong positive value identifies the
// system, not the application, as the source of the variability — the
// paper's root-cause question.
func CorrelateLoad(pts []ScatterPoint, load []LoadSample) float64 {
	if len(pts) == 0 || len(load) < 2 {
		return 0
	}
	var durs, loads []float64
	li := 0
	for _, p := range pts {
		for li+1 < len(load) && load[li+1].Time <= p.Time {
			li++
		}
		durs = append(durs, p.Dur)
		loads = append(loads, load[li].Load)
	}
	return stats.Pearson(durs, loads)
}

// Anomaly detection — the paper's stated purpose: "identify and better
// understand any root cause(s) of application I/O performance variation"
// at run time. Given a set of nominally identical jobs, DetectAnomalies
// compares each job's per-op mean durations against the population and
// flags outliers, the automated version of eyeballing Figure 7.

// Anomaly is one flagged (job, op) pair.
type Anomaly struct {
	JobID   int64
	Op      string
	MeanDur float64 // this job's mean duration (s)
	PopMean float64 // population median of the campaign
	Factor  float64 // MeanDur / PopMean
	Reason  string
}

// DetectAnomalies flags jobs whose mean read or write duration deviates
// from the other jobs' population by more than threshold x (threshold <= 1
// selects the default of 3).
func DetectAnomalies(client *dsos.Client, jobIDs []int64, threshold float64) ([]Anomaly, error) {
	if threshold <= 1 {
		threshold = 3
	}
	durs := map[string]map[int64]float64{"read": {}, "write": {}}
	for _, job := range jobIDs {
		objs, err := QueryJob(client, job)
		if err != nil {
			return nil, err
		}
		sums := map[string]float64{}
		counts := map[string]int{}
		for _, o := range objs {
			op := o[dsos.ColOp].(string)
			if op != "read" && op != "write" {
				continue
			}
			sums[op] += o[dsos.ColSegDur].(float64)
			counts[op]++
		}
		for op := range durs {
			if counts[op] > 0 {
				durs[op][job] = sums[op] / float64(counts[op])
			}
		}
	}
	var out []Anomaly
	for _, op := range []string{"read", "write"} {
		perJob := durs[op]
		if len(perJob) < 3 {
			continue // need a population to compare against
		}
		// Global median (self included): robust as long as fewer than half
		// the jobs are anomalous, and stable even for small campaigns where
		// leave-one-out statistics collapse.
		// Iterate jobIDs, not the map, so the collection order is
		// deterministic (Median sorts, but the contract is no map-order
		// leaks into any intermediate sequence).
		var all []float64
		for _, job := range jobIDs {
			if v, ok := perJob[job]; ok {
				all = append(all, v)
			}
		}
		pop := stats.Median(all)
		for _, job := range jobIDs {
			mine, ok := perJob[job]
			if !ok {
				continue
			}
			if pop <= 0 {
				continue
			}
			factor := mine / pop
			if factor >= threshold || (factor > 0 && 1/factor >= threshold) {
				out = append(out, Anomaly{
					JobID:   job,
					Op:      op,
					MeanDur: mine,
					PopMean: pop,
					Factor:  factor,
					Reason: fmt.Sprintf("mean %s duration %.3fs is %.1fx the population median %.3fs",
						op, mine, math.Max(factor, 1/factor), pop),
				})
			}
		}
	}
	return out, nil
}
