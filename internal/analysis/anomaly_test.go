package analysis

import (
	"testing"
)

func TestDetectAnomaliesFlagsOutlier(t *testing.T) {
	cl := testClient(t)
	// 5 jobs; job 2's reads are 100x slower (the Fig 7 anomaly).
	for job := int64(1); job <= 5; job++ {
		rd := 0.05
		if job == 2 {
			rd = 5.0
		}
		for i := 0; i < 10; i++ {
			insertEvent(t, cl, job, int64(i), "n", "read", float64(i), rd, 1<<20)
			insertEvent(t, cl, job, int64(i), "n", "write", float64(i)+20, 50, 16<<20)
		}
	}
	anoms, err := DetectAnomalies(cl, []int64{1, 2, 3, 4, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(anoms) != 1 {
		t.Fatalf("anomalies %+v", anoms)
	}
	a := anoms[0]
	if a.JobID != 2 || a.Op != "read" {
		t.Fatalf("flagged %+v", a)
	}
	if a.Factor < 50 {
		t.Fatalf("factor %.1f", a.Factor)
	}
	if a.Reason == "" {
		t.Fatal("no reason")
	}
}

func TestDetectAnomaliesCleanPopulation(t *testing.T) {
	cl := testClient(t)
	for job := int64(1); job <= 4; job++ {
		for i := 0; i < 10; i++ {
			insertEvent(t, cl, job, int64(i), "n", "write", float64(i), 1.0+0.01*float64(job), 4096)
		}
	}
	anoms, err := DetectAnomalies(cl, []int64{1, 2, 3, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(anoms) != 0 {
		t.Fatalf("false positives: %+v", anoms)
	}
}

func TestDetectAnomaliesFlagsFastOutlierToo(t *testing.T) {
	cl := testClient(t)
	for job := int64(1); job <= 4; job++ {
		d := 1.0
		if job == 3 {
			d = 0.01 // suspiciously fast (e.g. silent data loss)
		}
		for i := 0; i < 5; i++ {
			insertEvent(t, cl, job, int64(i), "n", "write", float64(i), d, 4096)
		}
	}
	anoms, err := DetectAnomalies(cl, []int64{1, 2, 3, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(anoms) != 1 || anoms[0].JobID != 3 {
		t.Fatalf("anomalies %+v", anoms)
	}
}

func TestDetectAnomaliesNeedsPopulation(t *testing.T) {
	cl := testClient(t)
	for job := int64(1); job <= 2; job++ {
		insertEvent(t, cl, job, 0, "n", "write", 0, float64(job)*100, 4096)
	}
	anoms, err := DetectAnomalies(cl, []int64{1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(anoms) != 0 {
		t.Fatalf("flagged with too small a population: %+v", anoms)
	}
}

func TestCorrelateLoad(t *testing.T) {
	// Durations track the load factor exactly -> r near 1.
	var pts []ScatterPoint
	var load []LoadSample
	for i := 0; i < 60; i++ {
		l := 1.0
		if i >= 30 {
			l = 3.0 // congestion in the second half
		}
		load = append(load, LoadSample{Time: float64(i), Load: l})
		pts = append(pts, ScatterPoint{Time: float64(i) + 0.5, Dur: l * 10, Op: "write"})
	}
	if r := CorrelateLoad(pts, load); r < 0.95 {
		t.Fatalf("correlation %v, want ~1", r)
	}
}

func TestCorrelateLoadDegenerate(t *testing.T) {
	if CorrelateLoad(nil, nil) != 0 {
		t.Fatal("empty inputs")
	}
	pts := []ScatterPoint{{Time: 1, Dur: 1}}
	if CorrelateLoad(pts, []LoadSample{{Time: 0, Load: 1}}) != 0 {
		t.Fatal("single load sample")
	}
}
