package analysis

import (
	"math"
	"testing"

	"darshanldms/internal/dsos"
	"darshanldms/internal/jsonmsg"
)

func insertEvent(t *testing.T, cl *dsos.Client, job int64, rank int64, node, op string, ts, dur float64, length int64) {
	t.Helper()
	m := jsonmsg.Message{
		UID: 1, Exe: jsonmsg.NA, JobID: job, Rank: int(rank), ProducerName: node,
		File: jsonmsg.NA, RecordID: 42, Module: "POSIX", Type: jsonmsg.TypeMOD, Op: op,
		MaxByte: -1,
		Seg: []jsonmsg.Segment{{
			DataSet: jsonmsg.NA, PtSel: -1, IrregHSlab: -1, RegHSlab: -1,
			NDims: -1, NPoints: -1, Off: 0, Len: length, Dur: dur, Timestamp: ts,
		}},
	}
	for _, o := range dsos.ObjectsFromMessage(&m) {
		if err := cl.Insert(dsos.DarshanSchemaName, o); err != nil {
			t.Fatal(err)
		}
	}
}

func testClient(t *testing.T) *dsos.Client {
	t.Helper()
	c := dsos.NewCluster(2, "darshan_data")
	if err := dsos.SetupDarshan(c); err != nil {
		t.Fatal(err)
	}
	return dsos.Connect(c)
}

func TestFrameBasics(t *testing.T) {
	f := NewFrame("a", "b")
	f.AppendRow(int64(1), "x")
	f.AppendRow(int64(2), "y")
	f.AppendRow(int64(3), "x")
	if f.Len() != 3 {
		t.Fatalf("len %d", f.Len())
	}
	if got := f.Float64s("a"); got[2] != 3 {
		t.Fatalf("col a %v", got)
	}
	if got := f.Strings("b"); got[1] != "y" {
		t.Fatalf("col b %v", got)
	}
	sub := f.Filter(func(i int) bool { return f.Value(i, "b") == "x" })
	if sub.Len() != 2 {
		t.Fatalf("filtered %d", sub.Len())
	}
	counts := f.GroupCount("b")
	if counts["x"] != 2 || counts["y"] != 1 {
		t.Fatalf("counts %v", counts)
	}
	means := f.GroupMean("b", "a")
	if means["x"] != 2 || means["y"] != 2 {
		t.Fatalf("means %v", means)
	}
	sums := f.GroupSum("b", "a")
	if sums["x"] != 4 {
		t.Fatalf("sums %v", sums)
	}
}

func TestFrameFromObjects(t *testing.T) {
	cl := testClient(t)
	insertEvent(t, cl, 1, 0, "nid00040", "write", 10, 0.5, 1024)
	insertEvent(t, cl, 1, 1, "nid00040", "read", 11, 0.1, 2048)
	fr, err := FrameForJobs(cl, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Len() != 2 {
		t.Fatalf("rows %d", fr.Len())
	}
	if got := fr.GroupSum("op", "seg_len"); got["write"] != 1024 || got["read"] != 2048 {
		t.Fatalf("group sums %v", got)
	}
}

func TestOpCountsWithCI(t *testing.T) {
	cl := testClient(t)
	// 5 jobs; write counts 10,10,12,8,10 -> mean 10, CI > 0.
	writes := []int{10, 10, 12, 8, 10}
	for j, n := range writes {
		job := int64(j + 1)
		insertEvent(t, cl, job, 0, "nid00040", "open", 0, 0.001, 0)
		for i := 0; i < n; i++ {
			insertEvent(t, cl, job, 0, "nid00040", "write", float64(i+1), 0.2, 4096)
		}
		insertEvent(t, cl, job, 0, "nid00040", "close", 100, 0.001, 0)
	}
	stats, err := OpCounts(cl, []int64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	byOp := map[string]OpCountStat{}
	for _, s := range stats {
		byOp[s.Op] = s
	}
	w := byOp["write"]
	if w.Mean != 10 {
		t.Fatalf("write mean %v", w.Mean)
	}
	if w.CI95 <= 0 {
		t.Fatal("write CI should be positive with varying counts")
	}
	if byOp["open"].CI95 != 0 {
		t.Fatalf("open counts are constant; CI %v", byOp["open"].CI95)
	}
	if len(w.PerJob) != 5 {
		t.Fatalf("per-job %v", w.PerJob)
	}
	if _, has := byOp["flush"]; has {
		t.Fatal("flush never occurred; should be omitted")
	}
}

func TestPerNodeOps(t *testing.T) {
	cl := testClient(t)
	insertEvent(t, cl, 1, 0, "nid00040", "open", 0, 0.01, 0)
	insertEvent(t, cl, 1, 1, "nid00040", "open", 1, 0.01, 0)
	insertEvent(t, cl, 1, 16, "nid00041", "open", 2, 0.01, 0)
	insertEvent(t, cl, 1, 0, "nid00040", "close", 3, 0.01, 0)
	insertEvent(t, cl, 1, 0, "nid00040", "write", 4, 0.01, 100) // not requested
	out, err := PerNodeOps(cl, []int64{1}, []string{"open", "close"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 { // (nid00040,open) (nid00040,close) (nid00041,open)
		t.Fatalf("rows %+v", out)
	}
	if out[0].Node != "nid00040" || out[0].Op != "close" || out[0].Count != 1 {
		t.Fatalf("first row %+v", out[0])
	}
	if out[1].Op != "open" || out[1].Count != 2 {
		t.Fatalf("second row %+v", out[1])
	}
}

func TestPerRankDurationsFindsAnomaly(t *testing.T) {
	cl := testClient(t)
	// Jobs 1,3: fast reads (0.05s); job 2: slow reads (6.75s).
	for job := int64(1); job <= 3; job++ {
		dur := 0.05
		if job == 2 {
			dur = 6.75
		}
		for rank := int64(0); rank < 4; rank++ {
			insertEvent(t, cl, job, rank, "nid00040", "read", float64(rank), dur, 1<<20)
			insertEvent(t, cl, job, rank, "nid00040", "write", float64(rank)+10, 50, 16<<20)
		}
	}
	out, err := PerRankDurations(cl, []int64{1, 2, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var job2Read, job1Read *JobOpDuration
	for i := range out {
		if out[i].Op == "read" && out[i].JobID == 2 {
			job2Read = &out[i]
		}
		if out[i].Op == "read" && out[i].JobID == 1 {
			job1Read = &out[i]
		}
	}
	if job2Read == nil || job1Read == nil {
		t.Fatal("missing rows")
	}
	if job2Read.MeanDur < 100*job1Read.MeanDur {
		t.Fatalf("anomalous job not visible: job2 %v vs job1 %v", job2Read.MeanDur, job1Read.MeanDur)
	}
	if len(job2Read.PerRank) != 4 || math.Abs(job2Read.PerRank[3]-6.75) > 1e-9 {
		t.Fatalf("per-rank %v", job2Read.PerRank)
	}
}

func TestTimelineScatterRelativeSorted(t *testing.T) {
	cl := testClient(t)
	insertEvent(t, cl, 7, 1, "n", "write", 1000.5, 0.1, 10)
	insertEvent(t, cl, 7, 0, "n", "write", 1000.0, 0.2, 20)
	insertEvent(t, cl, 7, 0, "n", "read", 1010.0, 0.3, 30)
	insertEvent(t, cl, 7, 0, "n", "open", 999.0, 0.0, 0) // sets t0, excluded from points
	pts, err := TimelineScatter(cl, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points %d", len(pts))
	}
	if pts[0].Time != 1.0 || pts[0].Op != "write" {
		t.Fatalf("first point %+v (t0 should come from the open)", pts[0])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time < pts[i-1].Time {
			t.Fatal("points not time-sorted")
		}
	}
}

func TestBytesTimeline(t *testing.T) {
	cl := testClient(t)
	// Ten write bursts then reads at the end (the Fig 8/9 pattern).
	for phase := 0; phase < 10; phase++ {
		for r := int64(0); r < 4; r++ {
			insertEvent(t, cl, 9, r, "n", "write", float64(phase*10)+float64(r)*0.1, 1, 1<<20)
		}
	}
	for r := int64(0); r < 4; r++ {
		insertEvent(t, cl, 9, r, "n", "read", 100+float64(r)*0.1, 0.05, 512<<10)
	}
	bins, err := BytesTimeline(cl, 9, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 20 {
		t.Fatalf("bins %d", len(bins))
	}
	var wb, rb float64
	var writes, reads int
	for _, b := range bins {
		wb += b.WriteBytes
		rb += b.ReadBytes
		writes += b.Writes
		reads += b.Reads
	}
	if wb != 40<<20 || rb != 4*(512<<10) {
		t.Fatalf("bytes wb=%v rb=%v", wb, rb)
	}
	if writes != 40 || reads != 4 {
		t.Fatalf("counts writes=%d reads=%d", writes, reads)
	}
	// Reads only in the final bins.
	for i, b := range bins[:15] {
		if b.Reads > 0 {
			t.Fatalf("read in early bin %d", i)
		}
	}
}

func TestBytesTimelineEmptyJob(t *testing.T) {
	cl := testClient(t)
	bins, err := BytesTimeline(cl, 404, 10)
	if err != nil || bins != nil {
		t.Fatalf("empty job: %v %v", bins, err)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("keys %v", keys)
	}
}

func TestTopFiles(t *testing.T) {
	cl := testClient(t)
	// File A: MET open names it; heavy writes. File B: light reads.
	mA := jsonmsg.Message{
		UID: 1, Exe: "/bin/app", JobID: 4, Rank: 0, ProducerName: "n",
		File: "/scratch/heavy.dat", RecordID: 111, Module: "POSIX",
		Type: jsonmsg.TypeMET, Op: "open",
		Seg: []jsonmsg.Segment{{DataSet: jsonmsg.NA, Timestamp: 1}},
	}
	for _, o := range dsos.ObjectsFromMessage(&mA) {
		cl.Insert(dsos.DarshanSchemaName, o)
	}
	for i := 0; i < 5; i++ {
		m := mA
		m.Type, m.Op, m.Exe, m.File = jsonmsg.TypeMOD, "write", jsonmsg.NA, jsonmsg.NA
		m.Seg = []jsonmsg.Segment{{DataSet: jsonmsg.NA, Len: 1 << 20, Dur: 0.5, Timestamp: float64(2 + i)}}
		for _, o := range dsos.ObjectsFromMessage(&m) {
			cl.Insert(dsos.DarshanSchemaName, o)
		}
	}
	mB := mA
	mB.RecordID, mB.File = 222, "/scratch/light.dat"
	for _, o := range dsos.ObjectsFromMessage(&mB) {
		cl.Insert(dsos.DarshanSchemaName, o)
	}
	mBr := mB
	mBr.Type, mBr.Op, mBr.Exe, mBr.File = jsonmsg.TypeMOD, "read", jsonmsg.NA, jsonmsg.NA
	mBr.Seg = []jsonmsg.Segment{{DataSet: jsonmsg.NA, Len: 100, Dur: 0.01, Timestamp: 9}}
	for _, o := range dsos.ObjectsFromMessage(&mBr) {
		cl.Insert(dsos.DarshanSchemaName, o)
	}

	top, err := TopFiles(cl, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("files %d", len(top))
	}
	if top[0].File != "/scratch/heavy.dat" || top[0].Bytes != 5<<20 || top[0].Ops != 6 {
		t.Fatalf("top file %+v", top[0])
	}
	if top[0].WriteTime != 2.5 {
		t.Fatalf("write time %v", top[0].WriteTime)
	}
	if top[1].File != "/scratch/light.dat" || top[1].ReadTime != 0.01 {
		t.Fatalf("second %+v", top[1])
	}
	// Limit applies.
	if one, _ := TopFiles(cl, 4, 1); len(one) != 1 {
		t.Fatal("limit")
	}
}
