package analysis

import (
	"sort"

	"darshanldms/internal/dsos"
	"darshanldms/internal/sos"
	"darshanldms/internal/stats"
)

// The figure modules query the DSOS store the same way the paper's Grafana
// back-end does — by job over the joint indices — and compute the datasets
// behind Figures 5 through 9.

// QueryJob fetches every stored event of one job, ordered by
// (rank, timestamp).
func QueryJob(client *dsos.Client, jobID int64) ([]sos.Object, error) {
	return client.Query("job_rank_time", sos.Key{jobID}, sos.Key{jobID + 1})
}

// FrameForJobs fetches several jobs into one dataframe.
func FrameForJobs(client *dsos.Client, jobIDs []int64) (*Frame, error) {
	schema := dsos.DarshanSchema()
	var all []sos.Object
	for _, id := range jobIDs {
		objs, err := QueryJob(client, id)
		if err != nil {
			return nil, err
		}
		all = append(all, objs...)
	}
	return FromObjects(schema, all), nil
}

// OpCountStat is one bar of Figure 5: the mean occurrence count of an
// operation across jobs with its 95% confidence half-width.
type OpCountStat struct {
	Op     string
	Mean   float64
	CI95   float64
	PerJob []float64
}

// OpCounts computes Figure 5's dataset for one application configuration:
// for each operation type, the mean number of occurrences over the given
// jobs and the 95% CI error bar.
func OpCounts(client *dsos.Client, jobIDs []int64) ([]OpCountStat, error) {
	perOpPerJob := map[string][]float64{}
	for _, job := range jobIDs {
		objs, err := QueryJob(client, job)
		if err != nil {
			return nil, err
		}
		counts := map[string]float64{}
		for _, o := range objs {
			counts[o[dsos.ColOp].(string)]++
		}
		for _, op := range []string{"open", "close", "read", "write", "flush"} {
			perOpPerJob[op] = append(perOpPerJob[op], counts[op])
		}
	}
	var out []OpCountStat
	for _, op := range []string{"open", "close", "read", "write", "flush"} {
		vals := perOpPerJob[op]
		if stats.Sum(vals) == 0 {
			continue
		}
		mean, ci := stats.MeanCI(vals)
		out = append(out, OpCountStat{Op: op, Mean: mean, CI95: ci, PerJob: vals})
	}
	return out, nil
}

// NodeOpCount is one bar group of Figure 6: per node, per job, the number
// of requests of one operation type.
type NodeOpCount struct {
	Node  string
	JobID int64
	Op    string
	Count int
}

// PerNodeOps computes Figure 6's dataset: I/O requests per node for the
// given operations and jobs.
func PerNodeOps(client *dsos.Client, jobIDs []int64, ops []string) ([]NodeOpCount, error) {
	wanted := map[string]bool{}
	for _, op := range ops {
		wanted[op] = true
	}
	var out []NodeOpCount
	for _, job := range jobIDs {
		objs, err := QueryJob(client, job)
		if err != nil {
			return nil, err
		}
		counts := map[[2]string]int{} // (node, op) -> count
		for _, o := range objs {
			op := o[dsos.ColOp].(string)
			if !wanted[op] {
				continue
			}
			counts[[2]string{o[dsos.ColProducerName].(string), op}]++
		}
		keys := make([][2]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			out = append(out, NodeOpCount{Node: k[0], JobID: job, Op: k[1], Count: counts[k]})
		}
	}
	return out, nil
}

// JobOpDuration is one cell of Figure 7: for one job and operation type,
// the mean per-op duration (plus per-rank means for the spatial analysis).
type JobOpDuration struct {
	JobID   int64
	Op      string
	MeanDur float64 // seconds, across all ops of the job
	Count   int
	PerRank []float64 // mean duration per rank (index = rank)
}

// PerRankDurations computes Figure 7's dataset: read and write durations
// per rank for each job of a campaign, exposing anomalous jobs.
func PerRankDurations(client *dsos.Client, jobIDs []int64, nranks int) ([]JobOpDuration, error) {
	var out []JobOpDuration
	for _, job := range jobIDs {
		objs, err := QueryJob(client, job)
		if err != nil {
			return nil, err
		}
		for _, op := range []string{"read", "write"} {
			sumPerRank := make([]float64, nranks)
			cntPerRank := make([]int, nranks)
			var sum float64
			count := 0
			for _, o := range objs {
				if o[dsos.ColOp].(string) != op {
					continue
				}
				rank := int(o[dsos.ColRank].(int64))
				dur := o[dsos.ColSegDur].(float64)
				sum += dur
				count++
				if rank >= 0 && rank < nranks {
					sumPerRank[rank] += dur
					cntPerRank[rank]++
				}
			}
			jd := JobOpDuration{JobID: job, Op: op, Count: count}
			if count > 0 {
				jd.MeanDur = sum / float64(count)
			}
			jd.PerRank = make([]float64, nranks)
			for r := range jd.PerRank {
				if cntPerRank[r] > 0 {
					jd.PerRank[r] = sumPerRank[r] / float64(cntPerRank[r])
				}
			}
			out = append(out, jd)
		}
	}
	return out, nil
}

// ScatterPoint is one point of Figure 8: an operation plotted at its
// absolute time with its duration.
type ScatterPoint struct {
	Time float64 // seconds since job start
	Dur  float64 // seconds
	Op   string
	Rank int64
	Len  int64
}

// TimelineScatter computes Figure 8's dataset: every read/write of a job
// as (time, duration) points, using the absolute timestamps the connector
// collected. t0 is subtracted so times are job-relative.
func TimelineScatter(client *dsos.Client, jobID int64) ([]ScatterPoint, error) {
	objs, err := QueryJob(client, jobID)
	if err != nil {
		return nil, err
	}
	t0 := 0.0
	for i, o := range objs {
		ts := o[dsos.ColSegTimestamp].(float64)
		if i == 0 || ts < t0 {
			t0 = ts
		}
	}
	var out []ScatterPoint
	for _, o := range objs {
		op := o[dsos.ColOp].(string)
		if op != "read" && op != "write" {
			continue
		}
		out = append(out, ScatterPoint{
			Time: o[dsos.ColSegTimestamp].(float64) - t0,
			Dur:  o[dsos.ColSegDur].(float64),
			Op:   op,
			Rank: o[dsos.ColRank].(int64),
			Len:  o[dsos.ColSegLen].(int64),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}

// FileHotspot summarizes one file's traffic within a job.
type FileHotspot struct {
	File      string
	RecordID  uint64
	Bytes     int64
	Ops       int
	WriteTime float64 // summed seg durations (s)
	ReadTime  float64
}

// TopFiles ranks a job's files by bytes moved — the "busiest files" view.
// MET (open) messages carry the file path; MOD messages are joined to it
// through the record id, so the live stream suffices to name the files.
func TopFiles(client *dsos.Client, jobID int64, n int) ([]FileHotspot, error) {
	objs, err := QueryJob(client, jobID)
	if err != nil {
		return nil, err
	}
	byRec := map[uint64]*FileHotspot{}
	for _, o := range objs {
		rec := o[dsos.ColRecordID].(uint64)
		h := byRec[rec]
		if h == nil {
			h = &FileHotspot{RecordID: rec}
			byRec[rec] = h
		}
		if f := o[dsos.ColFile].(string); f != "N/A" && h.File == "" {
			h.File = f
		}
		h.Ops++
		op := o[dsos.ColOp].(string)
		if op == "read" || op == "write" {
			h.Bytes += o[dsos.ColSegLen].(int64)
			if op == "write" {
				h.WriteTime += o[dsos.ColSegDur].(float64)
			} else {
				h.ReadTime += o[dsos.ColSegDur].(float64)
			}
		}
	}
	out := make([]FileHotspot, 0, len(byRec))
	for _, h := range byRec {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].RecordID < out[j].RecordID
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out, nil
}

// TimelineBin is one bin of Figure 9: bytes read/written and op counts in a
// time window, aggregated across ranks.
type TimelineBin struct {
	Start      float64 // seconds since job start
	End        float64
	ReadBytes  float64
	WriteBytes float64
	Reads      int
	Writes     int
}

// BytesTimeline computes Figure 9's dataset: the Grafana-style aggregated
// byte timeline of a job.
func BytesTimeline(client *dsos.Client, jobID int64, nbins int) ([]TimelineBin, error) {
	pts, err := TimelineScatter(client, jobID)
	if err != nil || len(pts) == 0 {
		return nil, err
	}
	tMax := pts[len(pts)-1].Time
	if tMax <= 0 {
		tMax = 1
	}
	width := tMax / float64(nbins)
	bins := make([]TimelineBin, nbins)
	for i := range bins {
		bins[i].Start = float64(i) * width
		bins[i].End = bins[i].Start + width
	}
	for _, p := range pts {
		idx := int(p.Time / width)
		if idx >= nbins {
			idx = nbins - 1
		}
		if idx < 0 {
			idx = 0
		}
		if p.Op == "read" {
			bins[idx].ReadBytes += float64(p.Len)
			bins[idx].Reads++
		} else {
			bins[idx].WriteBytes += float64(p.Len)
			bins[idx].Writes++
		}
	}
	return bins, nil
}
