package replay

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoadBuiltinSample(t *testing.T) {
	tr, err := LoadTrace("builtin:sample")
	if err != nil {
		t.Fatalf("LoadTrace: %v", err)
	}
	if got := tr.Ranks(); got != 4 {
		t.Fatalf("sample trace ranks = %d, want 4", got)
	}
	if len(tr.Ops) != 72 {
		t.Fatalf("sample trace ops = %d, want 72", len(tr.Ops))
	}
	// Rank 3 is the straggler: its span must clearly exceed rank 0's.
	span := func(rank int) float64 {
		ops := tr.RankOps(rank)
		return ops[len(ops)-1].End
	}
	if span(3) < 2*span(0) {
		t.Fatalf("straggler missing: rank 3 span %.3f, rank 0 span %.3f", span(3), span(0))
	}
}

func TestDXTRoundTrip(t *testing.T) {
	tr, err := LoadTrace("builtin:sample")
	if err != nil {
		t.Fatalf("LoadTrace: %v", err)
	}
	out := FormatDXT(tr)
	tr2, err := ParseDXT(out)
	if err != nil {
		t.Fatalf("re-parse formatted trace: %v", err)
	}
	if !bytes.Equal(out, FormatDXT(tr2)) {
		t.Fatal("FormatDXT is not a fixed point over ParseDXT")
	}
}

func TestParseDXTErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"field count", "POSIX 0 write 0 64", "want 8 fields"},
		{"unknown module", "NVMEOF 0 write 0 64 0.1 0.2 f.dat", "unknown module"},
		{"unknown op", "POSIX 0 mmap 0 64 0.1 0.2 f.dat", "unknown op"},
		{"bad rank", "POSIX -1 write 0 64 0.1 0.2 f.dat", "bad rank"},
		{"bad offset", "POSIX 0 write -5 64 0.1 0.2 f.dat", "bad offset"},
		{"end before start", "POSIX 0 write 0 64 0.2 0.1 f.dat", "bad end"},
		{"empty trace", "# nothing here\n", "no ops"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseDXT([]byte(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestLoadTraceUnknownBuiltin(t *testing.T) {
	if _, err := LoadTrace("builtin:nope"); err == nil {
		t.Fatal("unknown builtin accepted")
	}
}
