package replay

import (
	_ "embed"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// DXT-style trace files: the line-oriented form of Darshan's eXtended
// Tracing output (`darshan-dxt-parser`-shaped, simplified to one record
// per line):
//
//	<module> <rank> <op> <offset> <length> <start_s> <end_s> <file>
//
// Blank lines and #-comments are skipped. ParseDXT reads a trace,
// FormatDXT writes one (round-trip stable), and RunTrace (workload.go)
// re-executes a trace as a timed simulated workload — Recorder-style
// trace-driven evaluation (arXiv:2501.04654) through the same
// instrumentation as the generative apps.

// Trace ops.
const (
	TraceOpen  = "open"
	TraceRead  = "read"
	TraceWrite = "write"
	TraceClose = "close"
)

// MaxTraceOps bounds a parsed trace.
const MaxTraceOps = 1 << 20

// MaxTraceRanks bounds the rank space of a parsed trace.
const MaxTraceRanks = 4096

//go:embed testdata/sample.dxt
var sampleDXT []byte

// TraceOp is one traced I/O operation.
type TraceOp struct {
	Module string // "POSIX" or "MPIIO"
	Rank   int
	Op     string // open, read, write, close
	Offset int64
	Length int64
	Start  float64 // seconds from job start
	End    float64
	File   string
}

// Trace is a parsed DXT trace, ops ordered per rank by start time.
type Trace struct {
	Ops []TraceOp
}

// Ranks returns the trace's world size (max rank + 1).
func (t *Trace) Ranks() int {
	max := -1
	for _, op := range t.Ops {
		if op.Rank > max {
			max = op.Rank
		}
	}
	return max + 1
}

// Span returns the trace's duration in seconds (latest op end).
func (t *Trace) Span() float64 {
	var span float64
	for _, op := range t.Ops {
		if op.End > span {
			span = op.End
		}
	}
	return span
}

// RankOps returns rank's ops in start order.
func (t *Trace) RankOps(rank int) []TraceOp {
	var ops []TraceOp
	for _, op := range t.Ops {
		if op.Rank == rank {
			ops = append(ops, op)
		}
	}
	return ops
}

// ParseDXT parses a trace file. Per-rank op order is normalized to start
// time (stable, so simultaneous ops keep file order).
func ParseDXT(data []byte) (*Trace, error) {
	t := &Trace{}
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 8 {
			return nil, fmt.Errorf("replay: dxt line %d: want 8 fields, got %d", lineNo+1, len(fields))
		}
		op := TraceOp{Module: fields[0], Op: fields[2], File: fields[7]}
		if op.Module != "POSIX" && op.Module != "MPIIO" {
			return nil, fmt.Errorf("replay: dxt line %d: unknown module %q", lineNo+1, op.Module)
		}
		switch op.Op {
		case TraceOpen, TraceRead, TraceWrite, TraceClose:
		default:
			return nil, fmt.Errorf("replay: dxt line %d: unknown op %q", lineNo+1, op.Op)
		}
		var err error
		if op.Rank, err = strconv.Atoi(fields[1]); err != nil || op.Rank < 0 || op.Rank >= MaxTraceRanks {
			return nil, fmt.Errorf("replay: dxt line %d: bad rank %q", lineNo+1, fields[1])
		}
		if op.Offset, err = strconv.ParseInt(fields[3], 10, 64); err != nil || op.Offset < 0 {
			return nil, fmt.Errorf("replay: dxt line %d: bad offset %q", lineNo+1, fields[3])
		}
		if op.Length, err = strconv.ParseInt(fields[4], 10, 64); err != nil || op.Length < 0 {
			return nil, fmt.Errorf("replay: dxt line %d: bad length %q", lineNo+1, fields[4])
		}
		if op.Start, err = strconv.ParseFloat(fields[5], 64); err != nil || op.Start < 0 {
			return nil, fmt.Errorf("replay: dxt line %d: bad start %q", lineNo+1, fields[5])
		}
		if op.End, err = strconv.ParseFloat(fields[6], 64); err != nil || op.End < op.Start {
			return nil, fmt.Errorf("replay: dxt line %d: bad end %q", lineNo+1, fields[6])
		}
		if len(t.Ops) >= MaxTraceOps {
			return nil, fmt.Errorf("replay: trace exceeds %d ops", MaxTraceOps)
		}
		t.Ops = append(t.Ops, op)
	}
	if len(t.Ops) == 0 {
		return nil, fmt.Errorf("replay: trace has no ops")
	}
	sort.SliceStable(t.Ops, func(i, j int) bool {
		if t.Ops[i].Rank != t.Ops[j].Rank {
			return t.Ops[i].Rank < t.Ops[j].Rank
		}
		return t.Ops[i].Start < t.Ops[j].Start
	})
	return t, nil
}

// FormatDXT renders a trace back to the line format (ParseDXT∘FormatDXT
// is the identity on normalized traces).
func FormatDXT(t *Trace) []byte {
	var b strings.Builder
	b.WriteString("# module rank op offset length start_s end_s file\n")
	for _, op := range t.Ops {
		fmt.Fprintf(&b, "%s %d %s %d %d %.6f %.6f %s\n",
			op.Module, op.Rank, op.Op, op.Offset, op.Length, op.Start, op.End, op.File)
	}
	return []byte(b.String())
}

// LoadTrace resolves a scenario trace name: "builtin:sample" is the
// checked-in sample trace; anything else is a file path.
func LoadTrace(name string) (*Trace, error) {
	if name == "builtin:sample" {
		return ParseDXT(sampleDXT)
	}
	if strings.HasPrefix(name, "builtin:") {
		return nil, fmt.Errorf("replay: unknown builtin trace %q", name)
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("replay: %v", err)
	}
	return ParseDXT(data)
}
