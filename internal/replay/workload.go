package replay

import (
	"strings"
	"time"

	"darshanldms/internal/apps"
	"darshanldms/internal/cluster"
	"darshanldms/internal/darshan"
	"darshanldms/internal/mpi"
)

// TraceConfig parameterizes a trace re-execution.
type TraceConfig struct {
	Nodes []*cluster.Node
	Trace *Trace
	// Speedup divides the trace's timestamps (4 = replay 4x faster).
	// <= 0 means 1.
	Speedup float64
	// Dir prefixes every trace file path so concurrent replays do not
	// collide (default the file system mount).
	Dir string
}

// RunTrace re-executes the trace as a simulated workload: one rank per
// trace rank placed round-robin over Nodes, each rank pacing its ops to
// the trace's (speedup-scaled) start times in *virtual* time and issuing
// them through the instrumented POSIX layer. The replayed run flows
// through the same Darshan runtime — and so the same connector, streams
// and stores — as a generative job.
func RunTrace(env apps.Env, cfg TraceConfig) *mpi.World {
	sp := cfg.Speedup
	if sp <= 0 {
		sp = 1
	}
	dir := cfg.Dir
	if dir == "" {
		dir = env.FS.Mount()
	}
	tr := cfg.Trace
	return apps.Launch(env, cfg.Nodes, tr.Ranks(), 0, func(r *mpi.Rank, ctx *darshan.Ctx, pl darshan.PosixLayer) {
		base := r.Proc().Now()
		handles := map[string]*darshan.PosixFile{}
		var openOrder []string
		openFile := func(path string) *darshan.PosixFile {
			f, ok := handles[path]
			if !ok {
				// Traces carry reads of files the replay never saw
				// written; opening for write creates them so offsets
				// resolve.
				f = pl.Open(r.Proc(), r.ID, path, true).(*darshan.PosixFile)
				handles[path] = f
				openOrder = append(openOrder, path)
			}
			return f
		}
		for _, op := range tr.RankOps(r.ID) {
			due := base + time.Duration(op.Start/sp*float64(time.Second))
			if wait := due - r.Proc().Now(); wait > 0 {
				r.Proc().Sleep(wait)
			}
			path := dir + "/" + strings.TrimLeft(op.File, "/")
			switch op.Op {
			case TraceOpen:
				openFile(path)
			case TraceWrite:
				openFile(path).WriteFull(r.Proc(), op.Offset, op.Length)
			case TraceRead:
				openFile(path).ReadFull(r.Proc(), op.Offset, op.Length)
			case TraceClose:
				if f, ok := handles[path]; ok {
					f.Close(r.Proc())
					delete(handles, path)
					for i, p := range openOrder {
						if p == path {
							openOrder = append(openOrder[:i], openOrder[i+1:]...)
							break
						}
					}
				}
			}
		}
		// Close leaked handles in open order (not map order) so the event
		// stream stays deterministic.
		for _, path := range openOrder {
			handles[path].Close(r.Proc())
		}
	})
}
