package replay

import (
	"context"
	"testing"
	"time"

	"darshanldms/internal/dsos"
	"darshanldms/internal/jsonmsg"
	"darshanldms/internal/ldms"
	"darshanldms/internal/streams"
)

func seeded(t *testing.T) *dsos.Client {
	t.Helper()
	c := dsos.NewCluster(2, "darshan_data")
	if err := dsos.SetupDarshan(c); err != nil {
		t.Fatal(err)
	}
	cl := dsos.Connect(c)
	for i := 0; i < 40; i++ {
		op := "write"
		if i%4 == 0 {
			op = "read"
		}
		m := jsonmsg.Message{
			UID: 1, Exe: jsonmsg.NA, JobID: 5, Rank: i % 4, ProducerName: "nid00040",
			File: jsonmsg.NA, RecordID: 7, Module: "POSIX", Type: jsonmsg.TypeMOD, Op: op,
			Seg: []jsonmsg.Segment{{
				DataSet: jsonmsg.NA, Len: 4096, Dur: 0.01,
				Timestamp: 1.6e9 + float64(i)*0.05,
			}},
		}
		for _, o := range dsos.ObjectsFromMessage(&m) {
			if err := cl.Insert(dsos.DarshanSchemaName, o); err != nil {
				t.Fatal(err)
			}
		}
	}
	return cl
}

func TestReplayDeliversAllInOrder(t *testing.T) {
	cl := seeded(t)
	bus := streams.NewBus()
	var stamps []float64
	bus.Subscribe("darshanConnector", func(m streams.Message) {
		msg, err := jsonmsg.Parse(m.Data)
		if err != nil {
			t.Errorf("replayed message unparseable: %v", err)
			return
		}
		stamps = append(stamps, msg.Seg[0].Timestamp)
	})
	st, err := Job(context.Background(), cl, 5, bus, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != 40 || len(stamps) != 40 {
		t.Fatalf("events %d delivered %d", st.Events, len(stamps))
	}
	for i := 1; i < len(stamps); i++ {
		if stamps[i] < stamps[i-1] {
			t.Fatal("replay out of timestamp order")
		}
	}
	if st.Span < 1.9 || st.Span > 2.0 {
		t.Fatalf("span %v", st.Span)
	}
}

func TestReplayRoundTripsIntoStore(t *testing.T) {
	// Replaying into a fresh store must reproduce the original contents —
	// the analysis pipeline regression-test use case.
	src := seeded(t)
	dstCluster := dsos.NewCluster(2, "darshan_data")
	if err := dsos.SetupDarshan(dstCluster); err != nil {
		t.Fatal(err)
	}
	dst := dsos.Connect(dstCluster)
	d := ldms.NewDaemon("agg", "head")
	d.AttachStore("darshanConnector", ldms.NewDSOSStore(dst))
	if _, err := Job(context.Background(), src, 5, d.Bus(), Options{}); err != nil {
		t.Fatal(err)
	}
	if dst.Count(dsos.DarshanSchemaName) != 40 {
		t.Fatalf("destination has %d", dst.Count(dsos.DarshanSchemaName))
	}
	a, _ := src.Query("job_rank_time", nil, nil)
	b, _ := dst.Query("job_rank_time", nil, nil)
	if len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("row %d field %d: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestReplayPacing(t *testing.T) {
	cl := seeded(t)
	bus := streams.NewBus()
	bus.Subscribe("darshanConnector", func(streams.Message) {})
	// Span is ~1.95s; at 100x speedup the replay should take ~20ms.
	start := time.Now()
	st, err := Job(context.Background(), cl, 5, bus, Options{Speedup: 100})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 10*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("paced replay took %v (span %.2fs)", elapsed, st.Span)
	}
}

func TestReplayCancel(t *testing.T) {
	cl := seeded(t)
	bus := streams.NewBus()
	bus.Subscribe("darshanConnector", func(streams.Message) {})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	// Speedup 0.01: would take minutes; must abort on ctx.
	_, err := Job(ctx, cl, 5, bus, Options{Speedup: 0.01})
	if err == nil {
		t.Fatal("expected context error")
	}
}

func TestReplayUnknownJob(t *testing.T) {
	cl := seeded(t)
	if _, err := Job(context.Background(), cl, 404, streams.NewBus(), Options{}); err == nil {
		t.Fatal("expected error")
	}
}
