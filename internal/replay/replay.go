// Package replay re-publishes a stored job's event stream onto an LDMS
// Streams bus in absolute-timestamp order, optionally paced against the
// wall clock. It turns retained DSOS data back into the *run-time* feed the
// paper's dashboards consume — useful for demonstrations (watch the
// dashboard fill in as the job "runs") and for regression-testing analysis
// pipelines against recorded campaigns.
package replay

import (
	"context"
	"fmt"
	"time"

	"darshanldms/internal/dsos"
	"darshanldms/internal/jsonmsg"
	"darshanldms/internal/sos"
	"darshanldms/internal/streams"
)

// Options controls a replay.
type Options struct {
	// Speedup divides the original inter-event gaps (10 = 10x faster than
	// the original run). <= 0 replays as fast as possible (no pacing).
	Speedup float64
	// Tag overrides the stream tag (default connector tag).
	Tag string
	// Encoder serializes the reconstructed messages (default Fast).
	Encoder jsonmsg.Encoder
}

// Stats reports a finished replay.
type Stats struct {
	Events   int
	Duration time.Duration // wall-clock time spent replaying
	Span     float64       // original timestamp span (seconds)
}

// Job replays every stored event of jobID onto bus, in timestamp order.
// ctx cancels a paced replay early.
func Job(ctx context.Context, client *dsos.Client, jobID int64, bus *streams.Bus, opts Options) (*Stats, error) {
	objs, err := client.Query("job_time_rank", sos.Key{jobID}, sos.Key{jobID + 1})
	if err != nil {
		return nil, err
	}
	if len(objs) == 0 {
		return nil, fmt.Errorf("replay: job %d has no stored events", jobID)
	}
	tag := opts.Tag
	if tag == "" {
		tag = "darshanConnector"
	}
	enc := opts.Encoder
	if enc == nil {
		enc = jsonmsg.FastEncoder{}
	}
	start := time.Now()
	t0 := objs[0][dsos.ColSegTimestamp].(float64)
	tLast := objs[len(objs)-1][dsos.ColSegTimestamp].(float64)
	for _, o := range objs {
		if opts.Speedup > 0 {
			due := time.Duration((o[dsos.ColSegTimestamp].(float64) - t0) / opts.Speedup * float64(time.Second))
			if wait := due - time.Since(start); wait > 0 {
				select {
				case <-time.After(wait):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
		}
		m := messageFromObject(o)
		bus.PublishJSON(tag, enc.Encode(&m))
	}
	return &Stats{Events: len(objs), Duration: time.Since(start), Span: tLast - t0}, nil
}

// messageFromObject reconstructs the connector message from a stored row
// (the inverse of dsos.ObjectsFromMessage for single-seg messages).
func messageFromObject(o sos.Object) jsonmsg.Message {
	return jsonmsg.Message{
		Module:       o[dsos.ColModule].(string),
		UID:          o[dsos.ColUID].(int64),
		ProducerName: o[dsos.ColProducerName].(string),
		Switches:     o[dsos.ColSwitches].(int64),
		File:         o[dsos.ColFile].(string),
		Rank:         int(o[dsos.ColRank].(int64)),
		Flushes:      o[dsos.ColFlushes].(int64),
		RecordID:     o[dsos.ColRecordID].(uint64),
		Exe:          o[dsos.ColExe].(string),
		MaxByte:      o[dsos.ColMaxByte].(int64),
		Type:         o[dsos.ColType].(string),
		JobID:        o[dsos.ColJobID].(int64),
		Op:           o[dsos.ColOp].(string),
		Cnt:          o[dsos.ColCnt].(int64),
		Seg: []jsonmsg.Segment{{
			Off:        o[dsos.ColSegOff].(int64),
			PtSel:      o[dsos.ColSegPtSel].(int64),
			Dur:        o[dsos.ColSegDur].(float64),
			Len:        o[dsos.ColSegLen].(int64),
			NDims:      o[dsos.ColSegNDims].(int64),
			IrregHSlab: o[dsos.ColSegIrregHSlab].(int64),
			RegHSlab:   o[dsos.ColSegRegHSlab].(int64),
			DataSet:    o[dsos.ColSegDataSet].(string),
			NPoints:    o[dsos.ColSegNPoints].(int64),
			Timestamp:  o[dsos.ColSegTimestamp].(float64),
		}},
	}
}
