package apps

import (
	"fmt"

	"darshanldms/internal/cluster"
	"darshanldms/internal/darshan"
	"darshanldms/internal/mpi"
)

// MPIIOTestConfig parameterizes the Darshan MPI-IO-TEST benchmark run
// (Table IIa: 22 nodes, 16 MiB blocks, 10 iterations, collective vs
// independent, NFS vs Lustre).
type MPIIOTestConfig struct {
	Nodes        []*cluster.Node
	RanksPerNode int
	BlockSize    int64
	Iterations   int
	Collective   bool
	// ReadBackIterations is how many iterations' worth of data the
	// validation phase reads back at the end (mpi-io-test's -C check reads
	// a subset; Figs 8/9 show the read phase at ~20% of the written bytes).
	ReadBackIterations int
	// FileName overrides the output file (default <mount>/mpi-io-test.dat).
	FileName string
}

// DefaultMPIIOTest returns the paper's Table IIa configuration on the given
// nodes.
func DefaultMPIIOTest(nodes []*cluster.Node, collective bool) MPIIOTestConfig {
	return MPIIOTestConfig{
		Nodes:              nodes,
		RanksPerNode:       16,
		BlockSize:          16 * 1024 * 1024,
		Iterations:         10,
		Collective:         collective,
		ReadBackIterations: 2,
	}
}

// Ranks returns the world size.
func (c MPIIOTestConfig) Ranks() int { return len(c.Nodes) * c.RanksPerNode }

// RunMPIIOTest spawns the benchmark's ranks. Each rank writes one block per
// iteration at its rank-strided offset (all ranks to one shared file),
// then the validation phase reads part of the file back; collective mode
// uses MPI_File_write_at_all / read_at_all.
func RunMPIIOTest(env Env, cfg MPIIOTestConfig) {
	if cfg.FileName == "" {
		cfg.FileName = env.FS.Mount() + "/mpi-io-test.out.dat"
	}
	nranks := cfg.Ranks()
	launch(env, cfg.Nodes, nranks, 0, func(r *mpi.Rank, ctx *darshan.Ctx, pl darshan.PosixLayer) {
		f := darshan.OpenMPI(env.RT, r, env.FS, pl, mpi.IOConfig{}, cfg.FileName, true)
		stride := int64(nranks) * cfg.BlockSize
		for iter := 0; iter < cfg.Iterations; iter++ {
			offset := int64(iter)*stride + int64(r.ID)*cfg.BlockSize
			if cfg.Collective {
				f.WriteAtAll(offset, cfg.BlockSize)
			} else {
				f.WriteAt(offset, cfg.BlockSize)
				r.Barrier() // iteration sync between phases
			}
		}
		r.Barrier()
		// Validation read-back of the first ReadBackIterations iterations.
		for iter := 0; iter < cfg.ReadBackIterations && iter < cfg.Iterations; iter++ {
			offset := int64(iter)*stride + int64(r.ID)*cfg.BlockSize
			if cfg.Collective {
				f.ReadAtAll(offset, cfg.BlockSize)
			} else {
				f.ReadAt(offset, cfg.BlockSize)
			}
		}
		f.Close()
	})
}

// MPIIOTestDescription summarizes a configuration for reports.
func MPIIOTestDescription(cfg MPIIOTestConfig) string {
	mode := "independent"
	if cfg.Collective {
		mode = "collective"
	}
	return fmt.Sprintf("mpi-io-test nodes=%d ranks=%d block=%d iters=%d %s",
		len(cfg.Nodes), cfg.Ranks(), cfg.BlockSize, cfg.Iterations, mode)
}
