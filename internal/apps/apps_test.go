package apps

import (
	"strings"
	"testing"
	"time"

	"darshanldms/internal/cluster"
	"darshanldms/internal/darshan"
	"darshanldms/internal/rng"
	"darshanldms/internal/sim"
	"darshanldms/internal/simfs"
)

// testEnv builds a quiet (no short writes / open retries) environment so
// the structural assertions are deterministic.
func testEnv(t *testing.T, kind simfs.Kind, seed uint64, quiet bool) Env {
	t.Helper()
	e := sim.NewEngine()
	t.Cleanup(e.Close)
	m := cluster.New(e, cluster.Voltrino())
	var fscfg simfs.Config
	if kind == simfs.NFS {
		fscfg = simfs.DefaultNFS()
	} else {
		fscfg = simfs.DefaultLustre()
	}
	if quiet {
		fscfg.ShortWriteBase = -1
		fscfg.OpenRetryBase = -1
	}
	fs := simfs.New(e, fscfg, rng.New(seed).Derive("fs"))
	rt := darshan.NewRuntime(darshan.Config{JobID: 1, UID: 100, Exe: "/bin/test", DXT: true}, 0)
	return Env{E: e, M: m, FS: fs, RT: rt}
}

func TestMPIIOTestEventStructure(t *testing.T) {
	env := testEnv(t, simfs.NFS, 1, true)
	cfg := DefaultMPIIOTest(env.M.Nodes()[:2], false)
	cfg.RanksPerNode = 4 // 8 ranks
	RunMPIIOTest(env, cfg)
	if err := env.E.Run(0); err != nil {
		t.Fatal(err)
	}
	sum := env.RT.Finalize(env.E.Now(), cfg.Ranks())
	var posixWrites, mpiioWrites, posixReads, opens int64
	for _, r := range sum.Records {
		switch r.Module {
		case darshan.ModPOSIX:
			posixWrites += r.Writes
			posixReads += r.Reads
			opens += r.Opens
		case darshan.ModMPIIO:
			mpiioWrites += r.Writes
		}
	}
	// Independent on NFS: one POSIX write per MPIIO write.
	if mpiioWrites != int64(cfg.Ranks()*cfg.Iterations) {
		t.Fatalf("mpiio writes %d", mpiioWrites)
	}
	if posixWrites != mpiioWrites {
		t.Fatalf("posix writes %d, mpiio %d (NFS independent should be 1:1)", posixWrites, mpiioWrites)
	}
	if posixReads != int64(cfg.Ranks()*cfg.ReadBackIterations) {
		t.Fatalf("posix reads %d", posixReads)
	}
	if opens != int64(cfg.Ranks()) {
		t.Fatalf("posix opens %d", opens)
	}
	// All bytes written.
	want := int64(cfg.Ranks()) * int64(cfg.Iterations) * cfg.BlockSize
	if got := env.FS.FileSize(env.FS.Mount() + "/mpi-io-test.out.dat"); got != want {
		t.Fatalf("file size %d, want %d", got, want)
	}
}

func TestMPIIOTestLustreChunksMultiplyPosixEvents(t *testing.T) {
	env := testEnv(t, simfs.Lustre, 2, true)
	cfg := DefaultMPIIOTest(env.M.Nodes()[:2], false)
	cfg.RanksPerNode = 4
	RunMPIIOTest(env, cfg)
	if err := env.E.Run(0); err != nil {
		t.Fatal(err)
	}
	sum := env.RT.Finalize(env.E.Now(), cfg.Ranks())
	var posixWrites, mpiioWrites int64
	for _, r := range sum.Records {
		if r.Module == darshan.ModPOSIX {
			posixWrites += r.Writes
		}
		if r.Module == darshan.ModMPIIO {
			mpiioWrites += r.Writes
		}
	}
	// 16 MiB blocks over 4 MiB stripes: 4 POSIX writes per MPI-IO write —
	// the Table IIa message-count inflation on Lustre.
	if posixWrites != 4*mpiioWrites {
		t.Fatalf("posix %d vs mpiio %d writes, want 4:1", posixWrites, mpiioWrites)
	}
}

func TestMPIIOTestCollectiveAggregators(t *testing.T) {
	env := testEnv(t, simfs.Lustre, 3, true)
	cfg := DefaultMPIIOTest(env.M.Nodes()[:4], true)
	cfg.RanksPerNode = 4 // 16 ranks, 4 aggregators
	RunMPIIOTest(env, cfg)
	if err := env.E.Run(0); err != nil {
		t.Fatal(err)
	}
	sum := env.RT.Finalize(env.E.Now(), cfg.Ranks())
	writersByRank := map[int]int64{}
	for _, r := range sum.Records {
		if r.Module == darshan.ModPOSIX && r.Writes > 0 {
			writersByRank[r.Rank] += r.Writes
		}
	}
	if len(writersByRank) != 4 {
		t.Fatalf("POSIX writers %v, want only the 4 aggregators", writersByRank)
	}
	for rank := range writersByRank {
		if rank%4 != 0 {
			t.Fatalf("rank %d wrote but is not an aggregator", rank)
		}
	}
}

func TestHACCIOEventStructure(t *testing.T) {
	env := testEnv(t, simfs.Lustre, 4, true)
	cfg := DefaultHACCIO(env.M.Nodes()[:2], 100_000)
	cfg.RanksPerNode = 4
	RunHACCIO(env, cfg)
	if err := env.E.Run(0); err != nil {
		t.Fatal(err)
	}
	sum := env.RT.Finalize(env.E.Now(), cfg.Ranks())
	var opens, closes, writes, reads int64
	for _, r := range sum.Records {
		if r.Module != darshan.ModPOSIX {
			continue
		}
		opens += r.Opens
		closes += r.Closes
		writes += r.Writes
		reads += r.Reads
	}
	n := int64(cfg.Ranks())
	if opens != 2*n || closes != 2*n {
		t.Fatalf("opens %d closes %d, want %d each", opens, closes, 2*n)
	}
	if writes < n || reads < n {
		t.Fatalf("writes %d reads %d", writes, reads)
	}
	wantSize := n * cfg.BytesPerRank()
	if got := env.FS.FileSize(env.FS.Mount() + "/hacc-io-checkpoint.dat"); got != wantSize {
		t.Fatalf("checkpoint size %d want %d", got, wantSize)
	}
}

func TestHACCIOMessageScaleMatchesPaper(t *testing.T) {
	// Full-scale HACC-IO produces on the order of 1.7-2k events
	// (Table IIb "Avg. Messages": 1663-1995).
	env := testEnv(t, simfs.Lustre, 5, false)
	cfg := DefaultHACCIO(env.M.Nodes()[:16], 10_000) // small particles: same op structure
	RunHACCIO(env, cfg)
	if err := env.E.Run(0); err != nil {
		t.Fatal(err)
	}
	events := env.RT.EventCount()
	if events < 1500 || events > 2600 {
		t.Fatalf("HACC-IO events %d, want ~1.6k-2.2k", events)
	}
}

func TestHACCIORetriesVaryOpCounts(t *testing.T) {
	// With short writes and open retries enabled, two identical jobs must
	// not always produce identical op counts (Fig 5's run-to-run
	// variation).
	counts := map[int64]bool{}
	for i := 0; i < 4; i++ {
		env := testEnv(t, simfs.NFS, uint64(100+i), false)
		env.FS.Load().Epoch = 1.6 // heavy load raises retry probability
		cfg := DefaultHACCIO(env.M.Nodes()[:4], 300_000)
		cfg.RanksPerNode = 8
		RunHACCIO(env, cfg)
		if err := env.E.Run(0); err != nil {
			t.Fatal(err)
		}
		counts[env.RT.EventCount()] = true
	}
	if len(counts) < 2 {
		t.Fatalf("4 jobs under load produced identical event counts %v", counts)
	}
}

func TestHMMEREventVolume(t *testing.T) {
	env := testEnv(t, simfs.NFS, 6, true)
	cfg := DefaultHMMER(env.M.Node(0), simfs.NFS)
	cfg.Families = 500 // scaled for test speed; volume scales linearly
	RunHMMER(env, cfg)
	if err := env.E.Run(0); err != nil {
		t.Fatal(err)
	}
	events := env.RT.EventCount()
	// ~500 x (55+100) plus opens/closes/flushes.
	want := int64(500 * (55 + 100))
	if events < want || events > want+1000 {
		t.Fatalf("events %d, want ~%d", events, want)
	}
}

func TestHMMERLustreMoreEventsThanNFS(t *testing.T) {
	run := func(kind simfs.Kind) int64 {
		env := testEnv(t, kind, 7, true)
		cfg := DefaultHMMER(env.M.Node(0), kind)
		cfg.Families = 300
		RunHMMER(env, cfg)
		if err := env.E.Run(0); err != nil {
			t.Fatal(err)
		}
		return env.RT.EventCount()
	}
	nfs := run(simfs.NFS)
	lustre := run(simfs.Lustre)
	if lustre <= nfs {
		t.Fatalf("Lustre events (%d) should exceed NFS (%d) as in Table IIc", lustre, nfs)
	}
}

func TestHMMERNFSSlowerThanLustre(t *testing.T) {
	run := func(kind simfs.Kind) time.Duration {
		env := testEnv(t, kind, 8, true)
		cfg := DefaultHMMER(env.M.Node(0), kind)
		cfg.Families = 2000
		RunHMMER(env, cfg)
		if err := env.E.Run(0); err != nil {
			t.Fatal(err)
		}
		return env.E.Now()
	}
	nfs := run(simfs.NFS)
	lustre := run(simfs.Lustre)
	if float64(nfs) < 2.5*float64(lustre) {
		t.Fatalf("small-write workload: NFS (%v) should be much slower than Lustre (%v)", nfs, lustre)
	}
}

func TestSW4WritesImages(t *testing.T) {
	env := testEnv(t, simfs.Lustre, 9, true)
	cfg := DefaultSW4(env.M.Nodes()[:2])
	cfg.RanksPerNode = 4
	cfg.Steps = 10
	cfg.ImageEvery = 5
	cfg.BytesPerRank = 4 << 20
	cfg.ComputePerStep = 100 * time.Millisecond
	RunSW4(env, cfg)
	if err := env.E.Run(0); err != nil {
		t.Fatal(err)
	}
	// Two image files, each ranks x 4 MiB.
	found := 0
	for _, name := range []string{"image.cycle0005.3Dimg", "image.cycle0010.3Dimg"} {
		path := env.FS.Mount() + "/sw4/" + name
		if env.FS.Exists(path) {
			found++
			if got := env.FS.FileSize(path); got != int64(cfg.Ranks())*cfg.BytesPerRank {
				t.Fatalf("%s size %d", path, got)
			}
		}
	}
	if found != 2 {
		t.Fatalf("image files found: %d", found)
	}
	if env.RT.EventCount() == 0 {
		t.Fatal("no instrumented events")
	}
}

func TestDescriptions(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	m := cluster.New(e, cluster.Voltrino())
	if !strings.Contains(MPIIOTestDescription(DefaultMPIIOTest(m.Nodes()[:22], true)), "collective") {
		t.Fatal("mpi-io-test description")
	}
	if !strings.Contains(HACCIODescription(DefaultHACCIO(m.Nodes()[:16], 5_000_000)), "particles/rank=5000000") {
		t.Fatal("hacc description")
	}
	if !strings.Contains(HMMERDescription(DefaultHMMER(m.Node(0), simfs.NFS)), "ranks=32") {
		t.Fatal("hmmer description")
	}
	if !strings.Contains(SW4Description(DefaultSW4(m.Nodes()[:4])), "sw4") {
		t.Fatal("sw4 description")
	}
}

func TestHACCIOMPIModes(t *testing.T) {
	for _, mode := range []string{"mpi-indep", "mpi-coll"} {
		env := testEnv(t, simfs.Lustre, 10, true)
		cfg := DefaultHACCIO(env.M.Nodes()[:2], 50_000)
		cfg.RanksPerNode = 4
		cfg.Mode = mode
		RunHACCIO(env, cfg)
		if err := env.E.Run(0); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		sum := env.RT.Finalize(env.E.Now(), cfg.Ranks())
		var mpiioOpens, mpiioWrites, mpiioReads int64
		for _, r := range sum.Records {
			if r.Module == darshan.ModMPIIO {
				mpiioOpens += r.Opens
				mpiioWrites += r.Writes
				mpiioReads += r.Reads
			}
		}
		n := int64(cfg.Ranks())
		if mpiioOpens != n || mpiioWrites != n || mpiioReads != n {
			t.Fatalf("%s: MPIIO opens=%d writes=%d reads=%d, want %d each", mode, mpiioOpens, mpiioWrites, mpiioReads, n)
		}
		want := n * cfg.BytesPerRank()
		if got := env.FS.FileSize(env.FS.Mount() + "/hacc-io-checkpoint.dat"); got != want {
			t.Fatalf("%s: size %d want %d", mode, got, want)
		}
	}
}

func TestHMMERWorkerDispatch(t *testing.T) {
	// The master must ship family batches to every worker and stop them
	// cleanly (no deadlock), with compute overlapping its I/O.
	env := testEnv(t, simfs.Lustre, 11, true)
	cfg := DefaultHMMER(env.M.Node(0), simfs.Lustre)
	cfg.Families = 1000
	cfg.Ranks = 8
	RunHMMER(env, cfg)
	if err := env.E.Run(0); err != nil {
		t.Fatal(err)
	}
	if env.E.Now() <= 0 {
		t.Fatal("no time elapsed")
	}
	// Only rank 0 performs I/O.
	sum := env.RT.Finalize(env.E.Now(), cfg.Ranks)
	for _, r := range sum.Records {
		if r.Rank != 0 {
			t.Fatalf("rank %d performed I/O (%s)", r.Rank, r.Module)
		}
	}
}

func TestHMMERSingleRankNoDeadlock(t *testing.T) {
	env := testEnv(t, simfs.NFS, 12, true)
	cfg := DefaultHMMER(env.M.Node(0), simfs.NFS)
	cfg.Families = 100
	cfg.Ranks = 1
	RunHMMER(env, cfg)
	if err := env.E.Run(0); err != nil {
		t.Fatal(err)
	}
}
