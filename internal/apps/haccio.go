package apps

import (
	"fmt"

	"darshanldms/internal/cluster"
	"darshanldms/internal/darshan"
	"darshanldms/internal/mpi"
)

// HACC-IO simulates the checkpoint I/O of the Hardware Accelerated
// Cosmology Code: every rank writes its particles (x,y,z,vx,vy,vz,phi,pid,
// mask = 38 bytes/particle) into a shared checkpoint file at its contiguous
// offset, then reads them back for validation.

// BytesPerParticle is HACC-IO's particle record size.
const BytesPerParticle = 38

// HACCIOConfig parameterizes a HACC-IO run (Table IIb: 16 nodes, 5M or 10M
// particles per rank, POSIX pattern, NFS vs Lustre).
type HACCIOConfig struct {
	Nodes            []*cluster.Node
	RanksPerNode     int
	ParticlesPerRank int64
	// Mode selects the I/O pattern HACC-IO simulates: "posix", "mpi-indep",
	// or "mpi-coll".
	Mode     string
	FileName string
}

// DefaultHACCIO returns the paper's configuration.
func DefaultHACCIO(nodes []*cluster.Node, particlesPerRank int64) HACCIOConfig {
	return HACCIOConfig{
		Nodes:            nodes,
		RanksPerNode:     16,
		ParticlesPerRank: particlesPerRank,
		Mode:             "posix",
	}
}

// Ranks returns the world size.
func (c HACCIOConfig) Ranks() int { return len(c.Nodes) * c.RanksPerNode }

// BytesPerRank returns each rank's checkpoint footprint.
func (c HACCIOConfig) BytesPerRank() int64 { return c.ParticlesPerRank * BytesPerParticle }

// RunHACCIO spawns the HACC-IO ranks: checkpoint write phase, barrier,
// read-back validation phase.
func RunHACCIO(env Env, cfg HACCIOConfig) {
	if cfg.FileName == "" {
		cfg.FileName = env.FS.Mount() + "/hacc-io-checkpoint.dat"
	}
	perRank := cfg.BytesPerRank()
	launch(env, cfg.Nodes, cfg.Ranks(), 0, func(r *mpi.Rank, ctx *darshan.Ctx, pl darshan.PosixLayer) {
		offset := int64(r.ID) * perRank
		switch cfg.Mode {
		case "mpi-indep", "mpi-coll":
			f := darshan.OpenMPI(env.RT, r, env.FS, pl, mpi.IOConfig{}, cfg.FileName, true)
			if cfg.Mode == "mpi-coll" {
				f.WriteAtAll(offset, perRank)
				r.Barrier()
				f.ReadAtAll(offset, perRank)
			} else {
				f.WriteAt(offset, perRank)
				r.Barrier()
				f.ReadAt(offset, perRank)
			}
			f.Close()
		default: // posix
			// Checkpoint write: one open/write/close per rank.
			f := pl.Open(r.Proc(), r.ID, cfg.FileName, true).(*darshan.PosixFile)
			f.WriteFull(r.Proc(), offset, perRank)
			f.Close(r.Proc())
			r.Barrier()
			// Validation read-back.
			g := pl.Open(r.Proc(), r.ID, cfg.FileName, false).(*darshan.PosixFile)
			g.ReadFull(r.Proc(), offset, perRank)
			g.Close(r.Proc())
		}
	})
}

// HACCIODescription summarizes a configuration for reports.
func HACCIODescription(cfg HACCIOConfig) string {
	return fmt.Sprintf("hacc-io nodes=%d ranks=%d particles/rank=%d mode=%s",
		len(cfg.Nodes), cfg.Ranks(), cfg.ParticlesPerRank, cfg.Mode)
}
