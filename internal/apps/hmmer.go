package apps

import (
	"fmt"
	"time"

	"darshanldms/internal/cluster"
	"darshanldms/internal/darshan"
	"darshanldms/internal/mpi"
	"darshanldms/internal/simfs"
)

// HMMER's hmmbuild concatenates profile HMMs built from the Pfam-A.seed
// Stockholm alignment file into the Pfam-A.hmm database. Its I/O signature
// is millions of tiny buffered STDIO calls: the master rank reads alignment
// blocks family by family and writes each finished profile, while worker
// ranks compute. This is the paper's pathological case for the connector —
// 3-4.5M I/O events in a few-minute run.

// PfamASeedFamilies is the approximate family count of the Pfam-A.seed
// release the paper used.
const PfamASeedFamilies = 19632

// HMMERConfig parameterizes an hmmbuild run (Table IIc: 1 node, 32 ranks).
type HMMERConfig struct {
	Node     *cluster.Node
	Ranks    int
	Families int
	// ReadsPerFamily and WritesPerFamily set the small-op volume per
	// family. The defaults depend on the file system: direct-I/O-ish
	// behaviour on Lustre yields more, smaller reads than NFS's 32 KiB
	// rsize buffering, matching the paper's higher Lustre message count
	// (4.46M vs 3.12M).
	ReadsPerFamily  int
	WritesPerFamily int
	// ComputePerFamily is the HMM construction cost, spread over workers.
	ComputePerFamily time.Duration
	SeedFile         string
	OutFile          string
}

// DefaultHMMER returns the paper's configuration for the given file-system
// kind.
func DefaultHMMER(node *cluster.Node, kind simfs.Kind) HMMERConfig {
	cfg := HMMERConfig{
		Node:             node,
		Ranks:            32,
		Families:         PfamASeedFamilies,
		WritesPerFamily:  100,
		ComputePerFamily: 2 * time.Millisecond,
	}
	if kind == simfs.Lustre {
		cfg.ReadsPerFamily = 120
	} else {
		cfg.ReadsPerFamily = 55
	}
	return cfg
}

// EventEstimate returns the approximate Darshan event count of the run.
func (c HMMERConfig) EventEstimate() int64 {
	return int64(c.Families) * int64(c.ReadsPerFamily+c.WritesPerFamily+1)
}

// RunHMMER spawns the hmmbuild job: rank 0 performs all the I/O
// (macro-stepped STDIO), other ranks compute profile construction.
func RunHMMER(env Env, cfg HMMERConfig) {
	if cfg.SeedFile == "" {
		cfg.SeedFile = env.FS.Mount() + "/pfam/Pfam-A.seed"
	}
	if cfg.OutFile == "" {
		cfg.OutFile = env.FS.Mount() + "/pfam/Pfam-A.hmm"
	}
	// hmmbuild --mpi is master/worker: rank 0 reads alignments and writes
	// the database (all the I/O), shipping family batches to workers for
	// HMM construction over point-to-point messages.
	const famTag = 1
	const batch = 64
	nodes := []*cluster.Node{cfg.Node}
	launch(env, nodes, cfg.Ranks, 200*time.Millisecond, func(r *mpi.Rank, ctx *darshan.Ctx, pl darshan.PosixLayer) {
		if r.ID != 0 {
			// Worker: receive family batches until the stop marker, compute.
			for {
				n := r.Recv(0, famTag).(int)
				if n == 0 {
					break
				}
				r.Compute(time.Duration(n) * cfg.ComputePerFamily)
			}
			r.Barrier()
			return
		}
		// Master: stream the seed file, dispatch batches, write the database.
		in := darshan.OpenStdio(env.RT, env.FS, ctx, cfg.SeedFile)
		out := darshan.OpenStdio(env.RT, env.FS, ctx, cfg.OutFile)
		worker := 1
		pending := 0
		for fam := 0; fam < cfg.Families; fam++ {
			// Read the family's alignment block line by line.
			for i := 0; i < cfg.ReadsPerFamily; i++ {
				in.Read(96) // typical Stockholm line
			}
			pending++
			if pending == batch && cfg.Ranks > 1 {
				ctx.VClock().Flush()
				r.Send(worker, famTag, int64(pending)*4<<10, pending)
				worker = worker%(cfg.Ranks-1) + 1
				pending = 0
			}
			// Write the finished profile HMM.
			for i := 0; i < cfg.WritesPerFamily; i++ {
				out.Write(72) // typical HMM text line
			}
			if fam%4096 == 4095 {
				out.Flush()
			}
		}
		out.Flush()
		in.Close()
		out.Close()
		ctx.VClock().Flush()
		if cfg.Ranks > 1 {
			if pending > 0 {
				r.Send(worker, famTag, int64(pending)*4<<10, pending)
			}
			for w := 1; w < cfg.Ranks; w++ {
				r.Send(w, famTag, 16, 0) // stop marker
			}
		}
		r.Barrier()
	})
}

// HMMERDescription summarizes a configuration for reports.
func HMMERDescription(cfg HMMERConfig) string {
	return fmt.Sprintf("hmmbuild ranks=%d families=%d reads/fam=%d writes/fam=%d",
		cfg.Ranks, cfg.Families, cfg.ReadsPerFamily, cfg.WritesPerFamily)
}
