package apps

import (
	"fmt"

	"darshanldms/internal/cluster"
	"darshanldms/internal/darshan"
	"darshanldms/internal/mpi"
)

// Pathological workload generators for the scenario engine: I/O patterns
// the paper's three applications never exhibit but production machines do
// (LASSi arXiv:1906.03884 catalogues them as the contention classes that
// matter). A metadata storm is pure open/tiny-write/close churn — per-op
// monitoring cost dominates payload; the small-file pattern adds the
// read-back half of a build-system or ML-dataloader job.

// MetaStormConfig parameterizes a metadata storm.
type MetaStormConfig struct {
	Nodes        []*cluster.Node
	RanksPerNode int
	// FilesPerRank files are created, each with one FileBytes write.
	FilesPerRank int
	FileBytes    int64
	// Dir is the directory the per-rank files land in (default the file
	// system mount). Distinct jobs must pass distinct dirs.
	Dir string
}

// Ranks returns the world size.
func (c MetaStormConfig) Ranks() int { return len(c.Nodes) * c.RanksPerNode }

// RunMetaStorm spawns ranks that each churn through FilesPerRank
// open/write/close cycles on private tiny files: three instrumented
// events per file and almost no payload.
func RunMetaStorm(env Env, cfg MetaStormConfig) {
	dir := cfg.Dir
	if dir == "" {
		dir = env.FS.Mount()
	}
	launch(env, cfg.Nodes, cfg.Ranks(), 0, func(r *mpi.Rank, ctx *darshan.Ctx, pl darshan.PosixLayer) {
		for i := 0; i < cfg.FilesPerRank; i++ {
			path := fmt.Sprintf("%s/meta-r%d-f%d.dat", dir, r.ID, i)
			f := pl.Open(r.Proc(), r.ID, path, true).(*darshan.PosixFile)
			f.WriteFull(r.Proc(), 0, cfg.FileBytes)
			f.Close(r.Proc())
		}
	})
}

// MetaStormDescription summarizes a configuration for reports.
func MetaStormDescription(cfg MetaStormConfig) string {
	return fmt.Sprintf("metadata-storm nodes=%d ranks=%d files/rank=%d bytes/file=%d",
		len(cfg.Nodes), cfg.Ranks(), cfg.FilesPerRank, cfg.FileBytes)
}

// SmallFilesConfig parameterizes the small-file pathology.
type SmallFilesConfig struct {
	Nodes        []*cluster.Node
	RanksPerNode int
	FilesPerRank int
	FileBytes    int64
	Dir          string
}

// Ranks returns the world size.
func (c SmallFilesConfig) Ranks() int { return len(c.Nodes) * c.RanksPerNode }

// RunSmallFiles spawns ranks that write FilesPerRank small private files,
// barrier, then read every one back — the write-then-consume shape of a
// staging or dataloader job, with a per-file open on both sides.
func RunSmallFiles(env Env, cfg SmallFilesConfig) {
	dir := cfg.Dir
	if dir == "" {
		dir = env.FS.Mount()
	}
	launch(env, cfg.Nodes, cfg.Ranks(), 0, func(r *mpi.Rank, ctx *darshan.Ctx, pl darshan.PosixLayer) {
		for i := 0; i < cfg.FilesPerRank; i++ {
			path := fmt.Sprintf("%s/small-r%d-f%d.dat", dir, r.ID, i)
			f := pl.Open(r.Proc(), r.ID, path, true).(*darshan.PosixFile)
			f.WriteFull(r.Proc(), 0, cfg.FileBytes)
			f.Close(r.Proc())
		}
		r.Barrier()
		for i := 0; i < cfg.FilesPerRank; i++ {
			path := fmt.Sprintf("%s/small-r%d-f%d.dat", dir, r.ID, i)
			f := pl.Open(r.Proc(), r.ID, path, false).(*darshan.PosixFile)
			f.ReadFull(r.Proc(), 0, cfg.FileBytes)
			f.Close(r.Proc())
		}
	})
}

// SmallFilesDescription summarizes a configuration for reports.
func SmallFilesDescription(cfg SmallFilesConfig) string {
	return fmt.Sprintf("small-file nodes=%d ranks=%d files/rank=%d bytes/file=%d",
		len(cfg.Nodes), cfg.Ranks(), cfg.FilesPerRank, cfg.FileBytes)
}
