// Package apps contains the workload generators for the paper's four
// evaluation applications — HACC-IO, the Darshan MPI-IO-TEST benchmark,
// HMMER's hmmbuild, and sw4 — reproducing each application's I/O *pattern*
// (operation mix, sizes, phases, per-rank behaviour) over the simulated
// MPI runtime and file systems. Each generator spawns the job's ranks on an
// engine; the caller (harness) runs the engine to completion.
package apps

import (
	"time"

	"darshanldms/internal/cluster"
	"darshanldms/internal/darshan"
	"darshanldms/internal/mpi"
	"darshanldms/internal/sim"
	"darshanldms/internal/simfs"
)

// Env bundles the simulated systems a job runs on.
type Env struct {
	E  *sim.Engine
	M  *cluster.Machine
	FS *simfs.FileSystem
	RT *darshan.Runtime
}

// Launch wires a world of nranks over the given nodes, builds a per-rank
// Darshan context (with an optional macro-stepping VClock) and the
// instrumented POSIX layer, and starts the ranks. Exported so external
// workload drivers (internal/replay trace replay, internal/scenario jobs)
// run through the same instrumentation as the paper apps.
func Launch(env Env, nodes []*cluster.Node, nranks int, vcThreshold time.Duration,
	body func(r *mpi.Rank, ctx *darshan.Ctx, pl darshan.PosixLayer)) *mpi.World {
	return launch(env, nodes, nranks, vcThreshold, body)
}

// launch is the internal form of Launch.
func launch(env Env, nodes []*cluster.Node, nranks int, vcThreshold time.Duration,
	body func(r *mpi.Rank, ctx *darshan.Ctx, pl darshan.PosixLayer)) *mpi.World {

	w := mpi.NewWorld(env.E, env.M, nodes, nranks)
	ctxs := make([]*darshan.Ctx, nranks)
	pl := darshan.PosixLayer{
		RT: env.RT,
		FS: env.FS,
		Ctx: func(rank int) *darshan.Ctx {
			return ctxs[rank]
		},
	}
	w.Launch(func(r *mpi.Rank) {
		var vc *sim.VClock
		if vcThreshold > 0 {
			vc = sim.NewVClock(r.Proc(), vcThreshold)
		}
		ctxs[r.ID] = darshan.NewCtx(r.ID, r.Node().Name, r.Proc(), vc)
		body(r, ctxs[r.ID], pl)
		if vc != nil {
			vc.Flush()
		}
	})
	return w
}
