package apps

import (
	"fmt"
	"time"

	"darshanldms/internal/cluster"
	"darshanldms/internal/darshan"
	"darshanldms/internal/mpi"
)

// sw4 solves 3D seismic wave equations with mesh refinement. Its I/O
// signature: every rank reads the input grid specification at startup, the
// solver iterates compute-heavy timesteps, and the job periodically writes
// image/checkpoint volumes through collective MPI-IO sized to a fraction of
// node memory (the paper sized the grid to ~50% of available memory).

// SW4Config parameterizes an sw4 run.
type SW4Config struct {
	Nodes          []*cluster.Node
	RanksPerNode   int
	Steps          int
	ImageEvery     int           // write an image volume every N steps
	BytesPerRank   int64         // per-rank slice of the image/checkpoint
	ComputePerStep time.Duration // solver cost per step per rank
	InputFile      string
	ImageBase      string
}

// DefaultSW4 sizes the run like the paper: grid at ~50% of 64 GB/node
// memory spread over the ranks, modest step count.
func DefaultSW4(nodes []*cluster.Node) SW4Config {
	ranksPerNode := 16
	memPerNode := int64(64) << 30
	return SW4Config{
		Nodes:          nodes,
		RanksPerNode:   ranksPerNode,
		Steps:          20,
		ImageEvery:     5,
		BytesPerRank:   memPerNode / 2 / int64(ranksPerNode) / 16, // image = 1/16 of state
		ComputePerStep: 2 * time.Second,
	}
}

// Ranks returns the world size.
func (c SW4Config) Ranks() int { return len(c.Nodes) * c.RanksPerNode }

// RunSW4 spawns the sw4 ranks.
func RunSW4(env Env, cfg SW4Config) {
	if cfg.InputFile == "" {
		cfg.InputFile = env.FS.Mount() + "/sw4/berkeley.in"
	}
	if cfg.ImageBase == "" {
		cfg.ImageBase = env.FS.Mount() + "/sw4/image"
	}
	nranks := cfg.Ranks()
	launch(env, cfg.Nodes, nranks, 0, func(r *mpi.Rank, ctx *darshan.Ctx, pl darshan.PosixLayer) {
		// Startup: every rank reads the input spec (small POSIX reads).
		in := pl.Open(r.Proc(), r.ID, cfg.InputFile, false).(*darshan.PosixFile)
		in.ReadFull(r.Proc(), 0, 64<<10)
		in.Close(r.Proc())
		r.Barrier()
		img := 0
		for step := 1; step <= cfg.Steps; step++ {
			r.Compute(cfg.ComputePerStep)
			if cfg.ImageEvery > 0 && step%cfg.ImageEvery == 0 {
				name := fmt.Sprintf("%s.cycle%04d.3Dimg", cfg.ImageBase, step)
				f := darshan.OpenMPI(env.RT, r, env.FS, pl, mpi.IOConfig{}, name, true)
				f.WriteAtAll(int64(r.ID)*cfg.BytesPerRank, cfg.BytesPerRank)
				f.Close()
				img++
			}
		}
	})
}

// SW4Description summarizes a configuration for reports.
func SW4Description(cfg SW4Config) string {
	return fmt.Sprintf("sw4 nodes=%d ranks=%d steps=%d image-every=%d bytes/rank=%d",
		len(cfg.Nodes), cfg.Ranks(), cfg.Steps, cfg.ImageEvery, cfg.BytesPerRank)
}
