package harness

import (
	"strings"
	"testing"

	"darshanldms/internal/darshan"
	"darshanldms/internal/scenario"
)

func suiteSpec(t *testing.T, name string) *scenario.Spec {
	t.Helper()
	for _, s := range scenario.Suite() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("suite scenario %q missing", name)
	return nil
}

func TestScenarioRunDeterministic(t *testing.T) {
	spec := suiteSpec(t, "poisson-checkpoint")
	a, err := RunScenarioSpec(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenarioSpec(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := RenderScenarioResult(a), RenderScenarioResult(b)
	if ra != rb {
		t.Fatalf("identical seeded runs rendered differently:\n%s\nvs\n%s", ra, rb)
	}
	if len(a.Jobs) == 0 || a.Published == 0 || a.Delivered == 0 {
		t.Fatalf("scenario produced no traffic: %+v", a)
	}
}

func TestScenarioBaselineLossFree(t *testing.T) {
	// No faults, no rate limit: everything published must be delivered.
	r, err := RunScenarioSpec(suiteSpec(t, "poisson-checkpoint"), 42)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dropped() != 0 {
		t.Fatalf("fault-free scenario dropped %d messages", r.Dropped())
	}
	if r.Delivered != r.Published {
		t.Fatalf("delivered %d != published %d in fault-free scenario", r.Delivered, r.Published)
	}
	if r.Stored == 0 {
		t.Fatal("DSOS retained no rows")
	}
}

func TestScenarioFlashCrowdShedsUplink(t *testing.T) {
	// The pathology the fixed three-app suite cannot produce: the
	// synchronized metadata-storm burst must overflow the rate-limited
	// uplink's token bucket.
	r, err := RunScenarioSpec(suiteSpec(t, "flash-crowd-metadata"), 42)
	if err != nil {
		t.Fatal(err)
	}
	if r.UplinkShed == 0 {
		t.Fatalf("flash crowd did not shed on the rate-limited uplink: forwarded %d, published %d",
			r.UplinkForwarded, r.Published)
	}
	if r.Delivered >= r.Published {
		t.Fatalf("shedding not visible at the store: delivered %d, published %d", r.Delivered, r.Published)
	}
	out := RenderScenarioResult(r)
	if !strings.Contains(out, "rate-limited uplink") {
		t.Fatalf("report missing uplink shed section:\n%s", out)
	}
}

func TestScenarioFaultsFire(t *testing.T) {
	r, err := RunScenarioSpec(suiteSpec(t, "faulty-shared-contention"), 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.FaultLog) == 0 {
		t.Fatal("scheduled faults never fired")
	}
}

func TestScenarioReplayRuns(t *testing.T) {
	r, err := RunScenarioSpec(suiteSpec(t, "replay-dxt"), 42)
	if err != nil {
		t.Fatal(err)
	}
	replayed := false
	for _, j := range r.Jobs {
		if j.Kind == scenario.JobReplay && j.Events > 0 {
			replayed = true
		}
	}
	if !replayed {
		t.Fatal("no replay job produced events")
	}
}

func TestDetectScenarioAnomaliesCrossJob(t *testing.T) {
	mk := func(id int64, writeS float64) ScenarioJobResult {
		return ScenarioJobResult{ID: id, Kind: "small-file", Writes: 100, WriteS: writeS}
	}
	jobs := []ScenarioJobResult{mk(1, 1), mk(2, 1.1), mk(3, 0.9), mk(4, 5)}
	got := detectScenarioAnomalies(jobs, func(int) *darshan.Runtime { return nil }, 0)
	if len(got) != 1 || !strings.Contains(got[0], "job 4") {
		t.Fatalf("want exactly job 4 flagged, got %v", got)
	}
	// Below the 3x threshold: nothing flagged.
	jobs[3] = mk(4, 2.5)
	if got := detectScenarioAnomalies(jobs, func(int) *darshan.Runtime { return nil }, 0); len(got) != 0 {
		t.Fatalf("threshold not respected: %v", got)
	}
	// Fewer than 3 jobs of a kind: no population, no verdict.
	if got := detectScenarioAnomalies(jobs[:2], func(int) *darshan.Runtime { return nil }, 0); len(got) != 0 {
		t.Fatalf("tiny population flagged: %v", got)
	}
}

func TestScenarioCampaignRendersAllScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	c, err := ScenarioCampaign(42)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderScenarioCampaign(c)
	for _, s := range scenario.Suite() {
		if !strings.Contains(out, "== scenario "+s.Name+" ==") {
			t.Fatalf("campaign report missing scenario %s:\n%s", s.Name, out)
		}
	}
}
