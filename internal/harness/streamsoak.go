package harness

import (
	"fmt"
	"strings"
	"time"

	"darshanldms/internal/faults"
	"darshanldms/internal/ldms"
	"darshanldms/internal/rng"
	"darshanldms/internal/sim"
	"darshanldms/internal/sos"
	"darshanldms/internal/streams"
)

// The stream soak is the durable-stream layer's acceptance harness. It
// runs a publisher -> fault-injectable link -> aggregator pipeline whose
// aggregator stages every message through a DurableStream with a
// consumer-acked ingest loop, reruns it under many randomized (seeded)
// schedules of consumer crashes, stream (process) crashes, link outages,
// flaky-store windows and lag windows past retention, and audits four
// Jepsen-style invariants after every run:
//
//  1. No acked message lost — every identity the consumer acked is
//     present in the final store.
//  2. No effective duplicate — the DedupStore keeps each identity in the
//     store at most once, despite redelivery and link-replay overlap.
//  3. Cursors are monotone — the consumer's ack floor never regresses,
//     including across consumer crashes and stream reopens.
//  4. Retention drops are exactly accounted — Appended == Msgs + Dropped,
//     Dropped == FirstSeq-1, and the per-reason counts sum to the total,
//     at the end of every schedule.
//
// Each schedule then runs a second time against the legacy best-effort
// bus (no stream, no acks, no replay): the same faults demonstrably lose
// data there, which is the before/after the durable layer exists for.

// StreamSoakConfig parameterizes a stream soak.
type StreamSoakConfig struct {
	Seed              uint64
	Schedules         int           // randomized fault schedules (default 20)
	EventsPerSchedule int           // fault draws per schedule (default 5)
	Messages          int           // messages published per run (default 1500)
	Producers         int           // distinct producer nodes (default 4)
	RetainMsgs        int           // stream retention MaxMsgs (default 160)
	MaxInflight       int           // consumer flow-control window (default 32)
	AckWait           time.Duration // redelivery deadline, virtual (default 25ms)
	FlakyProb         float64       // store failure probability in flaky windows (default 0.3)
}

// DefaultStreamSoakConfig is the full-size soak: 20 schedules.
func DefaultStreamSoakConfig(seed uint64) StreamSoakConfig {
	return StreamSoakConfig{Seed: seed, Schedules: 20}
}

// StreamRunResult reports one schedule: the durable run, its invariant
// audit, and the legacy best-effort run of the same schedule.
type StreamRunResult struct {
	Schedule  string
	Published uint64 // matching-subject messages published at the source
	Noise     uint64 // non-matching subjects published (stream filters them)

	Appended       uint64 // messages the durable stream assigned sequences
	RetentionDrops uint64 // messages dropped by retention (lag windows)
	Acked          uint64 // identities the consumer acked
	Redelivered    uint64 // deadline/nak redeliveries
	Naks           uint64
	Missed         uint64 // sequences gone (retention) before delivery
	Deduped        uint64 // replayed deliveries suppressed by the dedup layer
	Stored         uint64 // identities in the final store
	LinkDropped    uint64
	LinkDuplicated uint64 // link replay-tail re-deliveries (dedup fodder)
	LinkRecovered  uint64
	FinalFloor     uint64
	FinalLag       uint64

	ConsumerCrashes int
	StreamReopens   int
	LinkOutages     int
	Pauses          int
	FlakyWindows    int

	LegacyStored uint64 // same schedule, plain best-effort bus
	LegacyLost   uint64 // published - stored on the legacy run

	Violations []string
}

// StreamSoakResult is a full soak.
type StreamSoakResult struct {
	Label      string
	Config     StreamSoakConfig
	Runs       []StreamRunResult
	Violations int    // total invariant violations across all durable runs
	LegacyLost uint64 // total messages the legacy bus lost across schedules
}

const (
	soakStreamName = "soak"
	soakFilter     = "darshan.*.POSIX"
	soakLinkTag    = "darshan.>"
	soakPubEvery   = 500 * time.Microsecond
	soakPollEvery  = time.Millisecond
	soakFetchBatch = 16
	soakLinkTail   = 64 // link replay tail: duplicates for the dedup layer
)

// Stream-soak fault kinds. Link faults reconnect through faults.Link;
// consumer/stream crashes exercise the durable cursor resume paths.
const (
	evStreamLinkOutage = iota // at-least-once transport outage (CutReplay)
	evStreamLinkCut           // hard partition: pre-stream loss
	evStreamConsumerCrash
	evStreamCrash // process crash: stream reopened from its segment
	evStreamConsumerPause
	evStreamFlaky
	evStreamKinds
)

type streamSoakEvent struct {
	kind int
	at   time.Duration
	dur  time.Duration
}

// drawStreamSchedule draws one randomized schedule over the first 80% of
// the horizon. Windows are 5-15% of the horizon, long enough for lag
// windows to run past RetainMsgs of backlog.
func drawStreamSchedule(r *rng.Stream, horizon time.Duration, n int) []streamSoakEvent {
	h := float64(horizon)
	evs := make([]streamSoakEvent, 0, n)
	for i := 0; i < n; i++ {
		evs = append(evs, streamSoakEvent{
			kind: r.Intn(evStreamKinds),
			at:   time.Duration(r.Float64() * 0.8 * h),
			dur:  time.Duration(r.Uniform(0.05, 0.15) * h),
		})
	}
	return evs
}

// idStore is the terminal store of the soak chain: it records how many
// times each (producer, seq) identity reached durable storage, and counts
// any message whose subject should have been filtered out upstream.
type idStore struct {
	ids    map[string]int
	leaked uint64
}

func newIDStore() *idStore { return &idStore{ids: map[string]int{}} }

// Name implements ldms.StorePlugin.
func (s *idStore) Name() string { return "soak-ids" }

// Store implements ldms.StorePlugin.
func (s *idStore) Store(m streams.Message) error {
	if !strings.HasSuffix(m.Tag, ".POSIX") {
		s.leaked++
	}
	s.ids[soakIdentity(m)]++
	return nil
}

func soakIdentity(m streams.Message) string {
	return fmt.Sprintf("%s/%d", m.Producer, m.Seq)
}

// gateStore models the legacy best-effort subscriber: while down (the
// window a real subscriber would spend crashed or detached) every
// delivery is silently gone — there is no spool and no cursor to resume.
type gateStore struct {
	inner ldms.StorePlugin
	down  bool
	lost  uint64
}

// Name implements ldms.StorePlugin.
func (g *gateStore) Name() string { return "gate(" + g.inner.Name() + ")" }

// Store implements ldms.StorePlugin.
func (g *gateStore) Store(m streams.Message) error {
	if g.down {
		g.lost++
		return nil
	}
	return g.inner.Store(m)
}

// soakPublisher publishes cfg.Messages messages on hierarchical subjects
// from round-robin producers, stamping per-producer sequence identities.
// Every fifth message goes to a non-matching subject (STDIO) to prove the
// stream's subject filter: it must never reach the store.
func soakPublisher(p *sim.Proc, cfg StreamSoakConfig, bus *streams.Bus, res *StreamRunResult) {
	seqs := make([]uint64, cfg.Producers)
	for i := 0; i < cfg.Messages; i++ {
		prod := i % cfg.Producers
		producer := fmt.Sprintf("nid%05d", 40+prod)
		module := "POSIX"
		if i%5 == 4 {
			module = "STDIO"
		}
		seqs[prod]++
		bus.Publish(streams.Message{
			Tag:      "darshan." + producer + "." + module,
			Type:     streams.TypeJSON,
			Data:     []byte(fmt.Sprintf(`{"mod":%q,"n":%d}`, module, i)),
			Producer: producer,
			Seq:      seqs[prod],
		})
		if module == "POSIX" {
			res.Published++
		} else {
			res.Noise++
		}
		p.Sleep(soakPubEvery)
	}
}

// soakState is the durable pipeline's mutable topology: the fault
// closures rewire it (crash consumers, reopen the stream) and the poll
// loop reads it. Everything runs in engine context, so no lock.
type soakState struct {
	e      *sim.Engine
	cfg    StreamSoakConfig
	wal    sos.WALStore
	aggBus *streams.Bus
	stream *streams.DurableStream
	cons   *streams.Consumer
	dedup  *ldms.DedupStore

	paused     bool
	streamDown bool
	stopped    bool
	lastFloor  uint64
	ackedIDs   map[string]int
	acc        streams.ConsumerStats // counters harvested from dead consumer instances
	res        *StreamRunResult
}

func (st *soakState) clock() time.Duration { return st.e.Now() }

func (st *soakState) openStream() error {
	s, err := streams.OpenStream(streams.StreamConfig{
		Name:      soakStreamName,
		Subjects:  []string{soakFilter},
		Retention: streams.RetentionPolicy{MaxMsgs: st.cfg.RetainMsgs},
		Clock:     st.clock,
	}, st.wal)
	if err != nil {
		return err
	}
	st.stream = s
	return st.aggBus.BindStream(s)
}

func (st *soakState) claimConsumer() error {
	c, err := st.stream.Consumer(streams.ConsumerConfig{
		Name:        "ingest",
		Filter:      soakFilter,
		MaxInflight: st.cfg.MaxInflight,
		AckWait:     st.cfg.AckWait,
	})
	if err != nil {
		return err
	}
	st.cons = c
	return nil
}

// harvest folds a dying consumer instance's counters into the run
// accumulator (instances reset their counters; the run must not).
func (st *soakState) harvest() {
	if st.cons == nil {
		return
	}
	cs := st.cons.Stats()
	st.acc.Redelivered += cs.Redelivered
	st.acc.Naks += cs.Naks
	st.acc.Missed += cs.Missed
	st.acc.DeadLettered += cs.DeadLettered
}

func (st *soakState) violate(format string, args ...any) {
	st.res.Violations = append(st.res.Violations, fmt.Sprintf(format, args...))
}

// poll is one tick of the consumer-acked ingest loop: fetch a batch, store
// each delivery, ack on success, nak for redelivery on failure, and check
// floor monotonicity. It reschedules itself until the run is stopped.
func (st *soakState) poll() {
	if st.stopped {
		return
	}
	defer st.e.After(soakPollEvery, st.poll)
	if st.paused || st.cons == nil {
		return
	}
	ds, err := st.cons.Fetch(soakFetchBatch)
	if err != nil {
		return // crashed/replaced between ticks; a fault closure reinstalls
	}
	for _, d := range ds {
		if serr := st.dedup.Store(d.Msg); serr != nil {
			_ = st.cons.Nak(d.Seq)
			continue
		}
		if aerr := st.cons.Ack(d.Seq); aerr != nil {
			return
		}
		st.ackedIDs[soakIdentity(d.Msg)]++
	}
	floor := st.cons.AckFloor()
	if floor < st.lastFloor {
		st.violate("cursor-regression: ack floor went %d -> %d", st.lastFloor, floor)
	}
	st.lastFloor = floor
}

// schedule installs one fault event's start/end closures. Overlapping
// windows are guarded by the topology state, so a schedule can draw
// conflicting windows and still be well-defined (and deterministic).
func (st *soakState) schedule(ev streamSoakEvent, link *faults.Link, flaky *faults.FlakyStore) {
	switch ev.kind {
	case evStreamLinkOutage:
		st.e.At(ev.at, func() {
			if link.Down() {
				return
			}
			st.res.LinkOutages++
			link.CutReplay()
			st.e.After(ev.dur, func() {
				if link.Down() {
					link.RestoreReplay()
				}
			})
		})
	case evStreamLinkCut:
		st.e.At(ev.at, func() {
			if link.Down() {
				return
			}
			st.res.LinkOutages++
			link.Cut()
			st.e.After(ev.dur, func() {
				if link.Down() {
					link.Restore()
				}
			})
		})
	case evStreamConsumerCrash:
		st.e.At(ev.at, func() {
			if st.cons == nil || st.streamDown {
				return
			}
			st.res.ConsumerCrashes++
			st.harvest()
			st.cons.Close()
			st.cons = nil
			st.e.After(ev.dur, func() {
				if st.streamDown || st.cons != nil {
					return // the stream-reopen path re-claims it
				}
				if err := st.claimConsumer(); err != nil {
					st.violate("consumer re-claim failed: %v", err)
				}
			})
		})
	case evStreamCrash:
		st.e.At(ev.at, func() {
			if st.streamDown {
				return
			}
			st.res.StreamReopens++
			st.streamDown = true
			st.harvest()
			if st.cons != nil {
				st.cons.Close()
				st.cons = nil
			}
			st.aggBus.UnbindStream(soakStreamName)
			cutHere := !link.Down()
			if cutHere {
				link.CutReplay() // the aggregator process died mid-connection
			}
			st.e.After(ev.dur, func() {
				st.streamDown = false
				if err := st.openStream(); err != nil {
					st.violate("stream reopen failed: %v", err)
					return
				}
				if err := st.claimConsumer(); err != nil {
					st.violate("consumer re-claim failed: %v", err)
				}
				if cutHere && link.Down() {
					// The publisher's transport replays its unacked tail
					// into the reopened stream: same identities, new
					// sequences, absorbed by the dedup layer.
					link.RestoreReplay()
				}
			})
		})
	case evStreamConsumerPause:
		st.e.At(ev.at, func() {
			if st.paused {
				return
			}
			st.res.Pauses++
			st.paused = true
			st.e.After(ev.dur, func() { st.paused = false })
		})
	case evStreamFlaky:
		st.e.At(ev.at, func() {
			st.res.FlakyWindows++
			flaky.SetActive(true)
			st.e.After(ev.dur, func() { flaky.SetActive(false) })
		})
	}
}

// runStreamSoak executes one schedule against the durable pipeline and
// audits the four invariants.
func runStreamSoak(cfg StreamSoakConfig, name string, evs []streamSoakEvent, root *rng.Stream) (*StreamRunResult, error) {
	e := sim.NewEngine()
	defer e.Close()
	res := &StreamRunResult{Schedule: name}

	pub := ldms.NewDaemon("soak-pub", "nid-soak")
	agg := ldms.NewDaemon("soak-agg", "head")
	link := faults.NewLink(e, pub, agg, soakLinkTag, 200*time.Microsecond)
	link.SetReplayTail(soakLinkTail)

	rec := newIDStore()
	flaky := faults.NewFlakyStore(rec, root.Derive("flaky"), cfg.FlakyProb)
	st := &soakState{
		e: e, cfg: cfg, wal: sos.NewMemWAL(), aggBus: agg.Bus(),
		dedup: ldms.NewDedupStore(flaky), ackedIDs: map[string]int{}, res: res,
	}
	if err := st.openStream(); err != nil {
		return nil, err
	}
	if err := st.claimConsumer(); err != nil {
		return nil, err
	}
	for _, ev := range evs {
		st.schedule(ev, link, flaky)
	}

	e.After(soakPollEvery, st.poll)
	e.Spawn("publisher", func(p *sim.Proc) { soakPublisher(p, cfg, pub.Bus(), res) })
	if err := e.Run(0); err != nil {
		return nil, err
	}
	// Catch-up: faults all end by 0.95 * horizon; give the consumer the
	// same span again to drain backlog, redeliveries and nak'd messages.
	horizon := e.Now()
	if err := e.Drain(2 * horizon); err != nil {
		return nil, err
	}
	st.stopped = true

	st.harvest()
	ss := st.stream.Stats()
	var cs streams.ConsumerStats
	if st.cons != nil {
		cs = st.cons.Stats()
	}
	res.Appended = ss.Appended
	res.RetentionDrops = ss.Dropped
	res.Acked = uint64(len(st.ackedIDs))
	res.Redelivered = st.acc.Redelivered + cs.Redelivered
	res.Naks = st.acc.Naks + cs.Naks
	res.Missed = st.acc.Missed + cs.Missed
	res.Deduped = st.dedup.Duplicates()
	res.Stored = uint64(len(rec.ids))
	ls := link.Stats()
	res.LinkDropped = ls.Dropped
	res.LinkDuplicated = ls.Duplicated
	res.LinkRecovered = ls.Recovered
	res.FinalFloor = cs.AckFloor
	res.FinalLag = cs.Lag

	// --- Invariant audit ---

	// 1. No acked message lost.
	lost := 0
	for id := range st.ackedIDs {
		if rec.ids[id] == 0 {
			lost++
		}
	}
	if lost > 0 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("acked-but-lost: %d acked identities missing from the store", lost))
	}

	// 2. No effective duplicate.
	dups := 0
	for _, n := range rec.ids {
		if n > 1 {
			dups += n - 1
		}
	}
	if dups > 0 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("duplicate-stored: %d extra copies despite the dedup layer", dups))
	}

	// 3. Monotone cursors are checked tick-by-tick in poll(); a regression
	// is already in res.Violations by now.

	// 4. Retention drops exactly accounted.
	if ss.Appended != uint64(ss.Msgs)+ss.Dropped {
		res.Violations = append(res.Violations,
			fmt.Sprintf("drop-accounting: appended %d != retained %d + dropped %d", ss.Appended, ss.Msgs, ss.Dropped))
	}
	if ss.Appended > 0 && ss.Dropped != ss.FirstSeq-1 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("drop-accounting: dropped %d != firstSeq-1 (%d)", ss.Dropped, ss.FirstSeq-1))
	}
	var reasons uint64
	for _, n := range ss.DroppedFor {
		reasons += n
	}
	if reasons != ss.Dropped {
		res.Violations = append(res.Violations,
			fmt.Sprintf("drop-accounting: per-reason drops sum to %d, total says %d", reasons, ss.Dropped))
	}

	// Catch-up: with every fault healed the consumer must fully drain.
	if st.cons == nil {
		res.Violations = append(res.Violations, "catch-up: no live consumer at the end of the run")
	} else if cs.Lag != 0 || cs.Inflight != 0 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("catch-up: consumer ended with lag %d, inflight %d", cs.Lag, cs.Inflight))
	}
	// The noise subjects must never have leaked past the subject filter.
	if rec.leaked > 0 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("subject-leak: %d non-matching messages reached the store", rec.leaked))
	}
	return res, nil
}

// runLegacySoak executes the same schedule against the paper's
// best-effort bus: the store hangs directly off the aggregator bus, a
// crashed/paused consumer is simply absent, and the link has no replay.
// Returns how many identities made it to the store.
func runLegacySoak(cfg StreamSoakConfig, evs []streamSoakEvent, root *rng.Stream) (uint64, error) {
	e := sim.NewEngine()
	defer e.Close()

	pub := ldms.NewDaemon("legacy-pub", "nid-soak")
	agg := ldms.NewDaemon("legacy-agg", "head")
	link := faults.NewLink(e, pub, agg, soakLinkTag, 200*time.Microsecond)

	rec := newIDStore()
	flaky := faults.NewFlakyStore(rec, root.Derive("flaky"), cfg.FlakyProb)
	gate := &gateStore{inner: flaky}
	agg.AttachStore(soakFilter, gate)

	for _, ev := range evs {
		ev := ev
		switch ev.kind {
		case evStreamLinkOutage, evStreamLinkCut:
			e.At(ev.at, func() {
				if link.Down() {
					return
				}
				link.Cut()
				e.After(ev.dur, func() {
					if link.Down() {
						link.Restore()
					}
				})
			})
		case evStreamConsumerCrash, evStreamConsumerPause, evStreamCrash:
			e.At(ev.at, func() {
				if gate.down {
					return
				}
				gate.down = true
				if ev.kind == evStreamCrash && !link.Down() {
					link.Cut()
					e.After(ev.dur, func() {
						if link.Down() {
							link.Restore()
						}
					})
				}
				e.After(ev.dur, func() { gate.down = false })
			})
		case evStreamFlaky:
			e.At(ev.at, func() {
				flaky.SetActive(true)
				e.After(ev.dur, func() { flaky.SetActive(false) })
			})
		}
	}

	var res StreamRunResult
	e.Spawn("publisher", func(p *sim.Proc) { soakPublisher(p, cfg, pub.Bus(), &res) })
	if err := e.Run(0); err != nil {
		return 0, err
	}
	if err := e.Drain(2 * e.Now()); err != nil {
		return 0, err
	}
	return uint64(len(rec.ids)), nil
}

// StreamSoak runs every randomized schedule against the durable pipeline
// (auditing invariants) and against the legacy best-effort bus (counting
// losses). Everything is drawn from cfg.Seed, so a soak replays
// bit-for-bit.
func StreamSoak(cfg StreamSoakConfig) (*StreamSoakResult, error) {
	if cfg.Schedules <= 0 {
		cfg.Schedules = 20
	}
	if cfg.EventsPerSchedule <= 0 {
		cfg.EventsPerSchedule = 5
	}
	if cfg.Messages <= 0 {
		cfg.Messages = 1500
	}
	if cfg.Producers <= 0 {
		cfg.Producers = 4
	}
	if cfg.RetainMsgs <= 0 {
		cfg.RetainMsgs = 160
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 32
	}
	if cfg.AckWait <= 0 {
		cfg.AckWait = 25 * time.Millisecond
	}
	if cfg.FlakyProb <= 0 {
		cfg.FlakyProb = 0.3
	}

	horizon := time.Duration(cfg.Messages) * soakPubEvery
	out := &StreamSoakResult{
		Label: fmt.Sprintf("%d msgs, retain %d, window %d, ackwait %s",
			cfg.Messages, cfg.RetainMsgs, cfg.MaxInflight, cfg.AckWait),
		Config: cfg,
	}
	root := rng.New(cfg.Seed)
	for i := 0; i < cfg.Schedules; i++ {
		name := fmt.Sprintf("stream-%02d", i)
		evs := drawStreamSchedule(root.DeriveN("stream-schedule", i), horizon, cfg.EventsPerSchedule)
		res, err := runStreamSoak(cfg, name, evs, root.DeriveN("stream-run", i))
		if err != nil {
			return nil, err
		}
		legacyStored, err := runLegacySoak(cfg, evs, root.DeriveN("legacy-run", i))
		if err != nil {
			return nil, err
		}
		res.LegacyStored = legacyStored
		if res.Published > legacyStored {
			res.LegacyLost = res.Published - legacyStored
		}
		out.Runs = append(out.Runs, *res)
		out.Violations += len(res.Violations)
		out.LegacyLost += res.LegacyLost
	}
	return out, nil
}

// RenderStreamSoak formats the soak as a per-schedule accounting table —
// durable pipeline on the left, the legacy bus's losses on the right —
// plus every invariant violation.
func RenderStreamSoak(c *StreamSoakResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stream soak: %s (seed %d, %d schedules)\n", c.Label, c.Config.Seed, len(c.Runs))
	fmt.Fprintf(&b, "%-10s %6s %8s %7s %6s %7s %6s %7s %7s %6s %5s %7s %7s  %s\n",
		"schedule", "publ", "appended", "dropped", "acked", "redeliv", "naks", "missed", "deduped", "stored", "lag", "legacy", "lost", "invariants")
	for _, r := range c.Runs {
		verdict := "ok"
		if len(r.Violations) > 0 {
			verdict = fmt.Sprintf("VIOLATED (%d)", len(r.Violations))
		}
		fmt.Fprintf(&b, "%-10s %6d %8d %7d %6d %7d %6d %7d %7d %6d %5d %7d %7d  %s\n",
			r.Schedule, r.Published, r.Appended, r.RetentionDrops, r.Acked, r.Redelivered,
			r.Naks, r.Missed, r.Deduped, r.Stored, r.FinalLag, r.LegacyStored, r.LegacyLost, verdict)
	}
	fmt.Fprintf(&b, "total invariant violations: %d\n", c.Violations)
	fmt.Fprintf(&b, "legacy best-effort bus lost %d messages across the same schedules\n", c.LegacyLost)
	for _, r := range c.Runs {
		if len(r.Violations) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n%s violations:\n", r.Schedule)
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	}
	return b.String()
}
