package harness

import (
	"fmt"
	"math"

	"darshanldms/internal/apps"
	"darshanldms/internal/jsonmsg"
	"darshanldms/internal/rng"
	"darshanldms/internal/simfs"
	"darshanldms/internal/stats"
)

// CellConfig describes one column of a Table II panel: an application
// configuration measured Darshan-only and with the connector (dC),
// Reps times each.
type CellConfig struct {
	Name       string
	FSKind     simfs.Kind
	Reps       int
	Seed       uint64
	EpochSigma float64 // campaign-to-campaign file-system drift
	Encoder    jsonmsg.Encoder
	UID        int
	Exe        string
	App        func(env apps.Env)
}

// CellResult is one measured column of Table II.
type CellResult struct {
	Name        string
	FSKind      simfs.Kind
	AvgMessages float64
	Rate        float64 // messages per second, averaged over dC runs
	AvgDarshan  float64 // seconds, Darshan-only
	AvgDC       float64 // seconds, Darshan-LDMS Connector
	OverheadPct float64
	DarshanRuns []float64
	DCRuns      []float64
}

// RunCell executes one cell: Reps Darshan-only runs under the baseline
// campaign epoch, then Reps dC runs under a *different* epoch — the
// paper's baselines were collected 1-2 weeks earlier, which is how
// negative apparent overheads arise.
func RunCell(cfg CellConfig) (*CellResult, error) {
	if cfg.Reps <= 0 {
		cfg.Reps = 5
	}
	root := rng.New(cfg.Seed)
	baselineEpoch := simfs.DrawEpoch(root.Derive("campaign-baseline"), cfg.EpochSigma)
	dcEpoch := simfs.DrawEpoch(root.Derive("campaign-dc"), cfg.EpochSigma)

	res := &CellResult{Name: cfg.Name, FSKind: cfg.FSKind}
	var msgSum float64
	var rateSum float64
	for rep := 0; rep < cfg.Reps; rep++ {
		// Per-repetition jitter on top of the campaign epoch.
		base, err := Run(RunOptions{
			Seed:   root.DeriveN("rep-darshan", rep).Uint64(),
			JobID:  int64(100*cfg.Seed%1000000) + int64(rep) + 1,
			UID:    cfg.UID,
			Exe:    cfg.Exe,
			FSKind: cfg.FSKind,
			Load:   repLoad(baselineEpoch, root.DeriveN("repload-b", rep)),
			App:    cfg.App,
		})
		if err != nil {
			return nil, fmt.Errorf("cell %s darshan rep %d: %w", cfg.Name, rep, err)
		}
		res.DarshanRuns = append(res.DarshanRuns, base.Runtime.Seconds())

		dc, err := Run(RunOptions{
			Seed:      root.DeriveN("rep-dc", rep).Uint64(),
			JobID:     int64(100*cfg.Seed%1000000) + int64(rep) + 51,
			UID:       cfg.UID,
			Exe:       cfg.Exe,
			FSKind:    cfg.FSKind,
			Load:      repLoad(dcEpoch, root.DeriveN("repload-d", rep)),
			Connector: true,
			Encoder:   cfg.Encoder,
			App:       cfg.App,
		})
		if err != nil {
			return nil, fmt.Errorf("cell %s dC rep %d: %w", cfg.Name, rep, err)
		}
		res.DCRuns = append(res.DCRuns, dc.Runtime.Seconds())
		msgSum += float64(dc.Messages)
		rateSum += dc.Rate
	}
	res.AvgDarshan = stats.Mean(res.DarshanRuns)
	res.AvgDC = stats.Mean(res.DCRuns)
	res.AvgMessages = msgSum / float64(cfg.Reps)
	res.Rate = rateSum / float64(cfg.Reps)
	if res.AvgDarshan > 0 {
		res.OverheadPct = (res.AvgDC - res.AvgDarshan) / res.AvgDarshan * 100
	}
	return res, nil
}

// repLoad derives a per-repetition load profile around the campaign epoch.
func repLoad(campaign *simfs.LoadProfile, r *rng.Stream) *simfs.LoadProfile {
	cp := *campaign
	cp.Epoch = campaign.Epoch * math.Exp(r.Normal(0, 0.06))
	cp.Wiggle = campaign.Wiggle
	return &cp
}

// Scale shrinks an experiment for quick runs: 1.0 is the paper's full
// configuration. Iterations, particles and families scale linearly (and so,
// approximately, do runtimes and message counts).
func scaleInt(full int, scale float64) int {
	v := int(math.Round(float64(full) * scale))
	if v < 1 {
		v = 1
	}
	return v
}

func scaleInt64(full int64, scale float64) int64 {
	v := int64(math.Round(float64(full) * scale))
	if v < 1 {
		v = 1
	}
	return v
}

// TableIIa regenerates the MPI-IO-TEST panel: {NFS, Lustre} x {collective,
// independent}, 22 nodes, 16 MiB blocks, 10 iterations.
func TableIIa(seed uint64, reps int, scale float64) ([]*CellResult, error) {
	var out []*CellResult
	for _, fsKind := range []simfs.Kind{simfs.NFS, simfs.Lustre} {
		for _, coll := range []bool{true, false} {
			fsKind, coll := fsKind, coll
			name := fmt.Sprintf("%s/collective=%v", fsKind, coll)
			cell, err := RunCell(CellConfig{
				Name:       name,
				FSKind:     fsKind,
				Reps:       reps,
				Seed:       seed ^ rng.New(seed).Derive(name).Uint64(),
				EpochSigma: 0.05, // the MPI-IO campaigns drifted only a few percent
				UID:        99066,
				Exe:        "/projects/darshan/tests/mpi-io-test",
				App: func(env apps.Env) {
					cfg := apps.DefaultMPIIOTest(env.M.Nodes()[:22], coll)
					cfg.Iterations = scaleInt(10, scale)
					cfg.ReadBackIterations = scaleInt(2, scale)
					apps.RunMPIIOTest(env, cfg)
				},
			})
			if err != nil {
				return nil, err
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// TableIIb regenerates the HACC-IO panel: {NFS, Lustre} x {5M, 10M}
// particles/rank on 16 nodes.
func TableIIb(seed uint64, reps int, scale float64) ([]*CellResult, error) {
	var out []*CellResult
	for _, fsKind := range []simfs.Kind{simfs.NFS, simfs.Lustre} {
		for _, particles := range []int64{5_000_000, 10_000_000} {
			fsKind, particles := fsKind, particles
			name := fmt.Sprintf("%s/particles=%dM", fsKind, particles/1_000_000)
			cell, err := RunCell(CellConfig{
				Name:       name,
				FSKind:     fsKind,
				Reps:       reps,
				Seed:       seed ^ rng.New(seed).Derive(name).Uint64(),
				EpochSigma: 0.18, // the HACC campaign shows the wildest drift (-36%..+12%)
				UID:        99066,
				Exe:        "/projects/hacc/hacc-io",
				App: func(env apps.Env) {
					cfg := apps.DefaultHACCIO(env.M.Nodes()[:16], scaleInt64(particles, scale))
					apps.RunHACCIO(env, cfg)
				},
			})
			if err != nil {
				return nil, err
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// TableIIc regenerates the HMMER panel: {NFS, Lustre}, 1 node, 32 ranks,
// Pfam-A.seed input. The connector uses the Sprintf encoder — the paper's
// sprintf() JSON formatting whose per-event cost dominates the runtime.
func TableIIc(seed uint64, reps int, scale float64) ([]*CellResult, error) {
	var out []*CellResult
	for _, fsKind := range []simfs.Kind{simfs.NFS, simfs.Lustre} {
		fsKind := fsKind
		name := fmt.Sprintf("%s/Pfam-A.seed", fsKind)
		cell, err := RunCell(CellConfig{
			Name:       name,
			FSKind:     fsKind,
			Reps:       reps,
			Seed:       seed ^ rng.New(seed).Derive(name).Uint64(),
			EpochSigma: 0.08,
			Encoder:    jsonmsg.SprintfEncoder{},
			UID:        99066,
			Exe:        "/projects/hmmer/bin/hmmbuild",
			App: func(env apps.Env) {
				cfg := apps.DefaultHMMER(env.M.Node(0), fsKind)
				cfg.Families = scaleInt(apps.PfamASeedFamilies, scale)
				apps.RunHMMER(env, cfg)
			},
		})
		if err != nil {
			return nil, err
		}
		out = append(out, cell)
	}
	return out, nil
}

// SweepPoint is one point of the sampling sweep: the overhead of the
// connector when publishing only every Nth event.
type SweepPoint struct {
	SampleEvery int
	FSKind      simfs.Kind
	AvgDarshan  float64
	AvgDC       float64
	OverheadPct float64
	Messages    float64
	Coverage    float64 // fraction of events published
}

// SamplingSweep measures HMMER overhead versus the every-Nth-event
// sampling rate — the curve behind the paper's future-work proposal
// ("allow users to collect every n-th I/O event ... without having to
// compensate in runtime performance"). Same-epoch campaigns isolate the
// connector cost.
func SamplingSweep(seed uint64, reps int, scale float64, rates []int) ([]*SweepPoint, error) {
	if len(rates) == 0 {
		rates = []int{1, 2, 10, 100}
	}
	var out []*SweepPoint
	for _, fsKind := range []simfs.Kind{simfs.NFS, simfs.Lustre} {
		for _, n := range rates {
			fsKind, n := fsKind, n
			name := fmt.Sprintf("sweep/%s/every-%d", fsKind, n)
			root := rng.New(seed ^ rng.New(seed).Derive(name).Uint64())
			var darshanRuns, dcRuns, msgs, events []float64
			for rep := 0; rep < maxInt(1, reps); rep++ {
				base, err := Run(RunOptions{
					Seed: root.DeriveN("b", rep).Uint64(), JobID: 1, UID: 99066,
					Exe: "/projects/hmmer/bin/hmmbuild", FSKind: fsKind,
					App: hmmerApp(fsKind, scale),
				})
				if err != nil {
					return nil, err
				}
				dc, err := Run(RunOptions{
					Seed: root.DeriveN("b", rep).Uint64(), JobID: 2, UID: 99066,
					Exe: "/projects/hmmer/bin/hmmbuild", FSKind: fsKind,
					Connector: true, Encoder: jsonmsg.SprintfEncoder{}, SampleEvery: n,
					App: hmmerApp(fsKind, scale),
				})
				if err != nil {
					return nil, err
				}
				darshanRuns = append(darshanRuns, base.Runtime.Seconds())
				dcRuns = append(dcRuns, dc.Runtime.Seconds())
				msgs = append(msgs, float64(dc.Messages))
				events = append(events, float64(dc.Events))
			}
			pt := &SweepPoint{
				SampleEvery: n,
				FSKind:      fsKind,
				AvgDarshan:  stats.Mean(darshanRuns),
				AvgDC:       stats.Mean(dcRuns),
				Messages:    stats.Mean(msgs),
			}
			if pt.AvgDarshan > 0 {
				pt.OverheadPct = (pt.AvgDC - pt.AvgDarshan) / pt.AvgDarshan * 100
			}
			if ev := stats.Mean(events); ev > 0 {
				pt.Coverage = pt.Messages / ev
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

func hmmerApp(fsKind simfs.Kind, scale float64) func(apps.Env) {
	return func(env apps.Env) {
		cfg := apps.DefaultHMMER(env.M.Node(0), fsKind)
		cfg.Families = scaleInt(apps.PfamASeedFamilies, scale)
		apps.RunHMMER(env, cfg)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AblationResult is one row of the encoder ablation (Section VI-A: "tests
// ... without the sprintf() ... average overhead was 0.37%").
type AblationResult struct {
	Encoder     string
	FSKind      simfs.Kind
	AvgDarshan  float64
	AvgDC       float64
	OverheadPct float64
}

// EncoderAblation measures HMMER overhead under each encoder.
func EncoderAblation(seed uint64, reps int, scale float64) ([]*AblationResult, error) {
	var out []*AblationResult
	for _, fsKind := range []simfs.Kind{simfs.NFS, simfs.Lustre} {
		for _, enc := range []jsonmsg.Encoder{jsonmsg.SprintfEncoder{}, jsonmsg.FastEncoder{}, jsonmsg.NoneEncoder{}} {
			fsKind, enc := fsKind, enc
			name := fmt.Sprintf("ablate/%s/%s", fsKind, enc.Name())
			cell, err := RunCell(CellConfig{
				Name:   name,
				FSKind: fsKind,
				Reps:   reps,
				Seed:   seed ^ rng.New(seed).Derive(name).Uint64(),
				// Same-epoch campaigns isolate the encoder cost.
				EpochSigma: 0.0,
				Encoder:    enc,
				UID:        99066,
				Exe:        "/projects/hmmer/bin/hmmbuild",
				App: func(env apps.Env) {
					cfg := apps.DefaultHMMER(env.M.Node(0), fsKind)
					cfg.Families = scaleInt(apps.PfamASeedFamilies, scale)
					apps.RunHMMER(env, cfg)
				},
			})
			if err != nil {
				return nil, err
			}
			out = append(out, &AblationResult{
				Encoder:     enc.Name(),
				FSKind:      fsKind,
				AvgDarshan:  cell.AvgDarshan,
				AvgDC:       cell.AvgDC,
				OverheadPct: cell.OverheadPct,
			})
		}
	}
	return out, nil
}
