package harness

import (
	"strings"
	"testing"

	"darshanldms/internal/simfs"
)

// shortSoakConfig is the CI-sized soak: small workload, fewer schedules,
// same invariants. Used by `make chaos-smoke` under the race detector.
func shortSoakConfig(seed uint64, replication int, wal bool) ChaosSoakConfig {
	return ChaosSoakConfig{
		Seed: seed, Schedules: 5, EventsPerSchedule: 5,
		Scale: 0.01, ParticlesPerRank: 5_000_000, FSKind: simfs.Lustre,
		Daemons: 4, Replication: replication, WAL: wal,
	}
}

// The durable configuration (WAL + R=2) must survive every schedule with
// zero invariant violations: nothing acked is lost, nothing stored twice,
// replicas converge, lossless runs match the oracle.
func TestChaosSoakDurable(t *testing.T) {
	res, err := ChaosSoak(shortSoakConfig(2022, 2, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("durable soak violated invariants:\n%s", RenderChaosSoak(res))
	}
	if len(res.Oracle.Violations) != 0 {
		t.Fatalf("oracle run self-check failed: %v", res.Oracle.Violations)
	}
	if res.Oracle.Merged == 0 || res.Oracle.Acked == 0 {
		t.Fatalf("oracle stored nothing: %+v", res.Oracle)
	}
	// The soak is only meaningful if the chaos actually bit: across the
	// schedules we need daemon crashes with WAL recovery, absorbed
	// duplicates, and read repair to all have fired.
	var walrec, dedup, dropped uint64
	repaired := 0
	crashes := 0
	for _, r := range res.Runs {
		walrec += r.WALRecovered
		dedup += r.Deduped
		dropped += r.LinkDropped
		repaired += r.Repaired
		for _, rec := range r.Log {
			if strings.Contains(rec.Msg, "crash daemon dsosd") {
				crashes++
			}
		}
	}
	if crashes == 0 {
		t.Fatal("no dsosd crash was scheduled across the soak; schedules too tame")
	}
	if walrec == 0 {
		t.Fatal("no WAL records were replayed; crash recovery never exercised")
	}
	if dedup == 0 {
		t.Fatal("no duplicates were absorbed; replay outages never exercised")
	}
	if repaired == 0 && dropped == 0 {
		t.Fatal("no read repair and no drops; fault schedules had no effect")
	}
}

// The legacy configuration (R=1, no WAL) must demonstrably lose acked data
// under the same schedules — that is the gap the durability layer closes.
func TestChaosSoakLegacyLosesData(t *testing.T) {
	res, err := ChaosSoak(shortSoakConfig(2022, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Fatal("legacy (R=1, no WAL) soak reported no violations; the harness cannot detect loss")
	}
	lost := false
	for _, r := range res.Runs {
		for _, v := range r.Violations {
			if strings.Contains(v, "acked-but-lost") {
				lost = true
			}
		}
	}
	if !lost {
		t.Fatalf("legacy soak never lost acked data:\n%s", RenderChaosSoak(res))
	}
}
