package harness

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"darshanldms/internal/apps"
	"darshanldms/internal/cluster"
	"darshanldms/internal/connector"
	"darshanldms/internal/darshan"
	"darshanldms/internal/dsos"
	"darshanldms/internal/faults"
	"darshanldms/internal/jsonmsg"
	"darshanldms/internal/ldms"
	"darshanldms/internal/replay"
	"darshanldms/internal/rng"
	"darshanldms/internal/scenario"
	"darshanldms/internal/sim"
	"darshanldms/internal/simfs"
)

// The scenario campaign executes declarative scenarios (internal/scenario)
// through the full connector→streams→ldms→dsos pipeline: a seeded plan of
// timed job launches runs on a spec-sized cluster with per-used-node LDMS
// daemons, fault-injectable hops (or a rate-limited uplink), and both a
// counting store and DSOS retention behind the remote aggregator. Reports
// are byte-stable — everything runs in virtual time from the one seed.

// scenarioUID is the synthetic job owner in scenario runs.
const scenarioUID = 99066

// ScenarioJobResult is one job's outcome.
type ScenarioJobResult struct {
	ID     int64
	Kind   string
	StartS float64
	Ranks  int
	Events int64
	Reads  int64
	Writes int64
	ReadS  float64 // summed read time, seconds
	WriteS float64 // summed write time, seconds
}

// MeanOpMS is the job's mean read/write duration in milliseconds.
func (j *ScenarioJobResult) MeanOpMS() float64 {
	if ops := j.Reads + j.Writes; ops > 0 {
		return (j.ReadS + j.WriteS) / float64(ops) * 1e3
	}
	return 0
}

// ScenarioResult is one executed scenario.
type ScenarioResult struct {
	Name            string
	Seed            uint64
	ClusterNodes    int
	UsedNodes       int
	FS              string
	ArrivalKind     string
	Runtime         time.Duration
	Events          int64
	Published       uint64 // connector messages published on node buses
	Delivered       uint64 // messages that reached the final store
	LinkDropped     uint64 // lost on fault-injectable hops
	UplinkForwarded uint64 // rate-limited uplink only
	UplinkShed      uint64 // rate-limited uplink token-bucket drops
	Stored          int    // rows retained in DSOS
	Jobs            []ScenarioJobResult
	FaultLog        []faults.Record
	Anomalies       []string
}

// Dropped is the scenario's total message loss.
func (r *ScenarioResult) Dropped() uint64 { return r.LinkDropped + r.UplinkShed }

// ScenarioCampaignResult is a full curated-suite campaign.
type ScenarioCampaignResult struct {
	Seed    uint64
	Results []*ScenarioResult
}

// RunScenarioSpec plans and executes one validated scenario under the
// campaign seed.
func RunScenarioSpec(spec *scenario.Spec, campaignSeed uint64) (*ScenarioResult, error) {
	plan := scenario.BuildPlan(spec, campaignSeed)

	// Resolve every replay trace up front so a bad trace fails fast.
	traces := map[string]*replay.Trace{}
	for _, j := range plan.Jobs {
		if j.Kind != scenario.JobReplay {
			continue
		}
		if _, ok := traces[j.Trace]; !ok {
			tr, err := replay.LoadTrace(j.Trace)
			if err != nil {
				return nil, err
			}
			traces[j.Trace] = tr
		}
	}

	e := sim.NewEngine()
	defer e.Close()
	ccfg := cluster.Voltrino()
	ccfg.Nodes = spec.Cluster.Nodes
	m := cluster.New(e, ccfg)
	root := rng.New(plan.Seed)

	var fscfg simfs.Config
	if spec.FS == "Lustre" {
		fscfg = simfs.DefaultLustre()
	} else {
		fscfg = simfs.DefaultNFS()
	}
	fscfg.Load = simfs.NominalLoad()
	fs := simfs.New(e, fscfg, root.Derive("fs"))

	ctl := faults.NewController(e)
	head := ldms.NewAggregator("agg-head", m.Head().Name)
	remote := ldms.NewAggregator("agg-remote", "shirley")

	nodeLat := scenarioLatency(spec.Pipeline.NodeLatencyUS, 150*time.Microsecond)
	upLat := scenarioLatency(spec.Pipeline.UplinkLatencyUS, 300*time.Microsecond)

	var uplinkStats *ldms.RelayStats
	var allLinks []*faults.Link
	if rate := spec.Pipeline.UplinkRatePerS; rate > 0 {
		_, st, err := ldms.RateLimitedRelay(e, head.Daemon, remote.Daemon, connector.DefaultTag, upLat, rate)
		if err != nil {
			return nil, err
		}
		uplinkStats = st
	} else {
		uplink := faults.NewLink(e, head.Daemon, remote.Daemon, connector.DefaultTag, upLat)
		ctl.RegisterLink("uplink", uplink)
		allLinks = append(allLinks, uplink)
	}

	daemons := map[string]*ldms.Daemon{}
	for _, idx := range plan.UsedNodes {
		n := m.Node(idx)
		d := ldms.NewDaemon("ldmsd-"+n.Name, n.Name)
		daemons[n.Name] = d
		l := faults.NewLink(e, d, head.Daemon, connector.DefaultTag, nodeLat)
		ctl.RegisterLink("node-"+strconv.Itoa(idx), l)
		allLinks = append(allLinks, l)
		head.AddProducer(d)
	}
	crash, restart := faults.CrashDaemon(allLinks...)
	ctl.RegisterCrash("head", crash, restart)

	count := &ldms.CountStore{}
	remote.AttachStore(connector.DefaultTag, count)
	dc := dsos.NewCluster(2, "darshan_data")
	if err := dsos.SetupDarshan(dc); err != nil {
		return nil, err
	}
	client := dsos.Connect(dc)
	remote.AttachStore(connector.DefaultTag, ldms.NewDSOSStore(client))

	if err := ctl.Apply(plan.Faults); err != nil {
		return nil, err
	}

	type jobState struct {
		rt    *darshan.Runtime
		conn  *connector.Connector
		ranks int
	}
	states := make([]*jobState, len(plan.Jobs))
	daemonOf := func(producer string) *ldms.Daemon { return daemons[producer] }

	for i := range plan.Jobs {
		i := i
		job := plan.Jobs[i]
		e.At(job.Start, func() {
			exe := "scenario/" + job.Kind
			rt := darshan.NewRuntime(darshan.Config{
				JobID: job.ID, UID: scenarioUID, Exe: exe, DXT: true,
			}, e.Now())
			conn := connector.Attach(rt, connector.Config{
				Encoder:        jsonmsg.FastEncoder{},
				Meta:           jsonmsg.JobMeta{UID: scenarioUID, JobID: job.ID, Exe: exe},
				ChargeOverhead: true,
			}, daemonOf)
			nodes := make([]*cluster.Node, len(job.NodeIndexes))
			for k, idx := range job.NodeIndexes {
				nodes[k] = m.Node(idx)
			}
			st := &jobState{rt: rt, conn: conn, ranks: job.Ranks()}
			if job.Kind == scenario.JobReplay {
				st.ranks = traces[job.Trace].Ranks()
			}
			states[i] = st
			runScenarioJob(apps.Env{E: e, M: m, FS: fs, RT: rt}, &job, nodes, traces)
		})
	}

	// The engine stops as soon as no worker procs remain, even with At
	// events still queued; an anchor proc sleeping to the last arrival
	// keeps the run alive across gaps in the arrival process.
	if n := len(plan.Jobs); n > 0 {
		last := plan.Jobs[n-1].Start
		e.Spawn("scenario-anchor", func(p *sim.Proc) { p.Sleep(last) })
	}
	if err := e.Run(0); err != nil {
		return nil, err
	}
	runtime := e.Now()
	if err := e.Drain(runtime + time.Second); err != nil {
		return nil, err
	}

	res := &ScenarioResult{
		Name:         spec.Name,
		Seed:         plan.Seed,
		ClusterNodes: spec.Cluster.Nodes,
		UsedNodes:    len(plan.UsedNodes),
		FS:           spec.FS,
		ArrivalKind:  spec.Arrival.Kind,
		Runtime:      runtime,
		Delivered:    count.Count(),
		FaultLog:     ctl.Log(),
		Stored:       storedRows(client),
	}
	for _, l := range allLinks {
		res.LinkDropped += l.Stats().Dropped
	}
	if uplinkStats != nil {
		res.UplinkForwarded = uplinkStats.Forwarded
		res.UplinkShed = uplinkStats.Dropped
	}
	for i, st := range states {
		if st == nil {
			continue
		}
		job := plan.Jobs[i]
		jr := ScenarioJobResult{
			ID:     job.ID,
			Kind:   job.Kind,
			StartS: job.Start.Seconds(),
			Ranks:  st.ranks,
			Events: st.rt.EventCount(),
		}
		for _, rec := range st.rt.Finalize(runtime, st.ranks).Records {
			jr.Reads += rec.Reads
			jr.Writes += rec.Writes
			jr.ReadS += rec.ReadTime.Seconds()
			jr.WriteS += rec.WriteTime.Seconds()
		}
		res.Events += jr.Events
		res.Published += st.conn.Stats().Published
		res.Jobs = append(res.Jobs, jr)
	}
	res.Anomalies = detectScenarioAnomalies(res.Jobs, func(i int) *darshan.Runtime {
		if states[i] == nil {
			return nil
		}
		return states[i].rt
	}, runtime)
	return res, nil
}

// scenarioLatency converts a spec latency (µs) with default.
func scenarioLatency(us float64, def time.Duration) time.Duration {
	if us <= 0 {
		return def
	}
	return time.Duration(us * float64(time.Microsecond))
}

// storedRows counts the rows the DSOS cluster retained.
func storedRows(c *dsos.Client) int {
	objs, err := c.Query("job_time_rank", nil, nil)
	if err != nil {
		return 0
	}
	return len(objs)
}

// runScenarioJob dispatches a planned job to its workload generator. Every
// job gets a unique file namespace so concurrent jobs never share handles
// by accident (shared contention comes from the file system model, not
// path collisions).
func runScenarioJob(env apps.Env, job *scenario.PlannedJob, nodes []*cluster.Node, traces map[string]*replay.Trace) {
	prefix := fmt.Sprintf("%s/scenario/job-%d", env.FS.Mount(), job.ID)
	switch job.Kind {
	case scenario.JobCheckpoint:
		parts := job.BytesPerRank / apps.BytesPerParticle
		if parts < 1 {
			parts = 1
		}
		apps.RunHACCIO(env, apps.HACCIOConfig{
			Nodes: nodes, RanksPerNode: job.RanksPerNode,
			ParticlesPerRank: parts, Mode: "posix",
			FileName: prefix + "-ckpt.dat",
		})
	case scenario.JobSharedFile:
		apps.RunMPIIOTest(env, apps.MPIIOTestConfig{
			Nodes: nodes, RanksPerNode: job.RanksPerNode,
			BlockSize: job.BlockBytes, Iterations: job.Iterations,
			Collective: true, ReadBackIterations: 1,
			FileName: prefix + "-shared.dat",
		})
	case scenario.JobMetaStorm:
		apps.RunMetaStorm(env, apps.MetaStormConfig{
			Nodes: nodes, RanksPerNode: job.RanksPerNode,
			FilesPerRank: job.FilesPerRank, FileBytes: job.FileBytes,
			Dir: prefix,
		})
	case scenario.JobSmallFile:
		apps.RunSmallFiles(env, apps.SmallFilesConfig{
			Nodes: nodes, RanksPerNode: job.RanksPerNode,
			FilesPerRank: job.FilesPerRank, FileBytes: job.FileBytes,
			Dir: prefix,
		})
	case scenario.JobReplay:
		replay.RunTrace(env, replay.TraceConfig{
			Nodes: nodes, Trace: traces[job.Trace],
			Speedup: job.Speedup, Dir: prefix,
		})
	}
}

// detectScenarioAnomalies flags two diagnosis targets, mirroring the
// paper's run-time use case: a job whose mean op duration is 3x its kind's
// median (cross-job contention victim), and a rank inside a job 3x slower
// than the job's median rank (straggler — what DXT replay carries).
func detectScenarioAnomalies(jobs []ScenarioJobResult, rtOf func(int) *darshan.Runtime, end time.Duration) []string {
	var out []string

	// Cross-job, within kind.
	byKind := map[string][]int{}
	for i, j := range jobs {
		if j.Reads+j.Writes > 0 {
			byKind[j.Kind] = append(byKind[j.Kind], i)
		}
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		idxs := byKind[kind]
		if len(idxs) < 3 {
			continue
		}
		means := make([]float64, len(idxs))
		for i, ji := range idxs {
			means[i] = jobs[ji].MeanOpMS()
		}
		med := medianOf(means)
		if med <= 0 {
			continue
		}
		for _, ji := range idxs {
			if m := jobs[ji].MeanOpMS(); m > 3*med {
				out = append(out, fmt.Sprintf("job %d (%s): mean op %.3fms is %.1fx the %s median %.3fms",
					jobs[ji].ID, kind, m, m/med, kind, med))
			}
		}
	}

	// Per-rank stragglers, within job.
	for i, j := range jobs {
		rt := rtOf(i)
		if rt == nil || j.Ranks < 4 {
			continue
		}
		type acc struct {
			ops int64
			dur float64
		}
		perRank := map[int]*acc{}
		for _, rec := range rt.Finalize(end, j.Ranks).Records {
			if rec.Rank < 0 {
				continue
			}
			a := perRank[rec.Rank]
			if a == nil {
				a = &acc{}
				perRank[rec.Rank] = a
			}
			a.ops += rec.Reads + rec.Writes
			a.dur += (rec.ReadTime + rec.WriteTime).Seconds()
		}
		var means []float64
		for r := 0; r < j.Ranks; r++ {
			if a := perRank[r]; a != nil && a.ops > 0 {
				means = append(means, a.dur/float64(a.ops)*1e3)
			}
		}
		if len(means) < 4 {
			continue
		}
		med := medianOf(append([]float64(nil), means...))
		if med <= 0 {
			continue
		}
		for r := 0; r < j.Ranks; r++ {
			a := perRank[r]
			if a == nil || a.ops == 0 {
				continue
			}
			if m := a.dur / float64(a.ops) * 1e3; m > 3*med {
				out = append(out, fmt.Sprintf("job %d (%s) rank %d: mean op %.3fms is %.1fx the job median %.3fms",
					j.ID, j.Kind, r, m, m/med, med))
			}
		}
	}
	return out
}

// medianOf sorts (in place) and returns the median.
func medianOf(v []float64) float64 {
	sort.Float64s(v)
	n := len(v)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}

// ScenarioCampaign runs the curated embedded suite under one seed.
func ScenarioCampaign(seed uint64) (*ScenarioCampaignResult, error) {
	out := &ScenarioCampaignResult{Seed: seed}
	for _, spec := range scenario.Suite() {
		r, err := RunScenarioSpec(spec, seed)
		if err != nil {
			return nil, err
		}
		out.Results = append(out.Results, r)
	}
	return out, nil
}

// RenderScenarioCampaign formats the campaign: a cross-scenario summary
// table, then each scenario's detail section.
func RenderScenarioCampaign(c *ScenarioCampaignResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario campaign: %d scenarios (seed %d)\n", len(c.Results), c.Seed)
	fmt.Fprintf(&b, "%-24s %5s %6s %8s %10s %10s %8s %8s %9s %10s\n",
		"scenario", "jobs", "nodes", "events", "published", "delivered", "dropped", "shed", "anomalies", "runtime_s")
	for _, r := range c.Results {
		fmt.Fprintf(&b, "%-24s %5d %6d %8d %10d %10d %8d %8d %9d %10.3f\n",
			r.Name, len(r.Jobs), r.UsedNodes, r.Events, r.Published, r.Delivered,
			r.Dropped(), r.UplinkShed, len(r.Anomalies), r.Runtime.Seconds())
	}
	for _, r := range c.Results {
		b.WriteString("\n")
		b.WriteString(RenderScenarioResult(r))
	}
	return b.String()
}

// RenderScenarioResult formats one scenario's detail section.
func RenderScenarioResult(r *ScenarioResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== scenario %s ==\n", r.Name)
	fmt.Fprintf(&b, "seed %d | %s arrivals | cluster %d nodes (%d used) | fs %s\n",
		r.Seed, r.ArrivalKind, r.ClusterNodes, r.UsedNodes, r.FS)
	fmt.Fprintf(&b, "runtime %.3fs | events %d | published %d | delivered %d | stored %d | link-dropped %d\n",
		r.Runtime.Seconds(), r.Events, r.Published, r.Delivered, r.Stored, r.LinkDropped)
	if r.UplinkForwarded+r.UplinkShed > 0 {
		shedPct := 100 * float64(r.UplinkShed) / float64(r.UplinkForwarded+r.UplinkShed)
		fmt.Fprintf(&b, "rate-limited uplink: forwarded %d, shed %d (%.2f%%)\n",
			r.UplinkForwarded, r.UplinkShed, shedPct)
	}
	fmt.Fprintf(&b, "%5s %-16s %9s %6s %8s %8s %8s %9s %9s\n",
		"job", "kind", "start_s", "ranks", "events", "reads", "writes", "read_s", "write_s")
	for _, j := range r.Jobs {
		fmt.Fprintf(&b, "%5d %-16s %9.3f %6d %8d %8d %8d %9.3f %9.3f\n",
			j.ID, j.Kind, j.StartS, j.Ranks, j.Events, j.Reads, j.Writes, j.ReadS, j.WriteS)
	}
	if len(r.FaultLog) > 0 {
		b.WriteString("fault log:\n")
		for _, rec := range r.FaultLog {
			fmt.Fprintf(&b, "  %s\n", rec)
		}
	}
	if len(r.Anomalies) > 0 {
		b.WriteString("anomalies:\n")
		for _, a := range r.Anomalies {
			fmt.Fprintf(&b, "  %s\n", a)
		}
	}
	return b.String()
}
