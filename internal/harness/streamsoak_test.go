package harness

import (
	"strings"
	"testing"
)

// TestStreamSoakInvariants is the durable-stream acceptance gate: 20
// randomized (seeded) schedules of consumer crashes, stream reopens, link
// outages, flaky-store windows and lag windows past retention, with zero
// invariant violations — while the legacy best-effort bus, under the same
// schedules, demonstrably loses data.
func TestStreamSoakInvariants(t *testing.T) {
	cfg := DefaultStreamSoakConfig(7)
	if testing.Short() {
		cfg.Schedules = 5
	}
	res, err := StreamSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("invariant violations:\n%s", RenderStreamSoak(res))
	}

	// The soak only proves something if the faults actually fired and the
	// recovery machinery actually ran.
	var crashes, reopens, outages, pauses int
	var drops, redeliv, deduped, naks uint64
	for _, r := range res.Runs {
		crashes += r.ConsumerCrashes
		reopens += r.StreamReopens
		outages += r.LinkOutages
		pauses += r.Pauses
		drops += r.RetentionDrops
		redeliv += r.Redelivered
		deduped += r.Deduped
		naks += r.Naks
	}
	if crashes == 0 || reopens == 0 || outages == 0 || pauses == 0 {
		t.Fatalf("soak too tame: crashes=%d reopens=%d outages=%d pauses=%d", crashes, reopens, outages, pauses)
	}
	if drops == 0 {
		t.Fatal("no schedule lagged past retention; the drop-accounting invariant went unexercised")
	}
	if naks == 0 || redeliv == 0 {
		t.Fatalf("no redelivery traffic (naks=%d redelivered=%d); the flaky windows went unexercised", naks, redeliv)
	}
	if deduped == 0 {
		t.Fatal("no duplicates absorbed; the link replay tails went unexercised")
	}
	if res.LegacyLost == 0 {
		t.Fatalf("the legacy best-effort bus lost nothing under these schedules:\n%s", RenderStreamSoak(res))
	}
}

// TestStreamSoakDeterministic: the soak is a seeded experiment — the
// whole rendered report must replay bit-for-bit.
func TestStreamSoakDeterministic(t *testing.T) {
	cfg := DefaultStreamSoakConfig(11)
	cfg.Schedules = 3
	a, err := StreamSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StreamSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := RenderStreamSoak(a), RenderStreamSoak(b)
	if ra != rb {
		t.Fatalf("soak not deterministic:\n--- first\n%s\n--- second\n%s", ra, rb)
	}
	if !strings.Contains(ra, "stream-00") {
		t.Fatalf("render missing schedule rows:\n%s", ra)
	}
}

// TestRenderStreamSoakViolations: a failing soak must surface every
// violation in the rendered report, not just a count.
func TestRenderStreamSoakViolations(t *testing.T) {
	res := &StreamSoakResult{
		Label: "durable",
		Runs: []StreamRunResult{{
			Schedule:   "stream-00",
			Violations: []string{"acked message 7 missing from store"},
		}},
		Violations: 1,
	}
	out := RenderStreamSoak(res)
	for _, want := range []string{"VIOLATED (1)", "stream-00 violations:", "acked message 7 missing from store"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}

	// The store plugins name themselves for daemon attachment diagnostics.
	ids := newIDStore()
	if ids.Name() != "soak-ids" {
		t.Fatalf("idStore.Name() = %q", ids.Name())
	}
	g := &gateStore{inner: ids}
	if g.Name() != "gate(soak-ids)" {
		t.Fatalf("gateStore.Name() = %q", g.Name())
	}
}
