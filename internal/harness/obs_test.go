package harness

import (
	"strings"
	"testing"
	"time"

	"darshanldms/internal/apps"
	"darshanldms/internal/connector"
	"darshanldms/internal/darshan"
	"darshanldms/internal/dsos"
	"darshanldms/internal/event"
	"darshanldms/internal/jsonmsg"
	"darshanldms/internal/ldms"
	"darshanldms/internal/obs"
	"darshanldms/internal/rng"
	"darshanldms/internal/sim"
	"darshanldms/internal/simfs"
	"darshanldms/internal/streams"
)

// captureStore keeps the typed records that reach the end of the store
// chain so tests can inspect their traces.
type captureStore struct {
	inner ldms.StorePlugin
	recs  []*event.Record
}

func (c *captureStore) Name() string { return "capture(" + c.inner.Name() + ")" }

func (c *captureStore) Store(m streams.Message) error {
	if err := c.inner.Store(m); err != nil {
		return err
	}
	if r, ok := m.Record.(*event.Record); ok {
		c.recs = append(c.recs, r)
	}
	return nil
}

// TestEndToEndTraceCoversEveryHop runs a minimal full pipeline with
// tracing on and asserts every stored record's span chain covers every
// pipeline hop — connector, node bus, both aggregation levels, dedup,
// store — in flow order, with non-decreasing virtual timestamps.
func TestEndToEndTraceCoversEveryHop(t *testing.T) {
	prev := obs.SetTracing(true)
	defer obs.SetTracing(prev)

	e := sim.NewEngine()
	defer e.Close()
	fscfg := simfs.DefaultNFS()
	fscfg.ShortWriteBase = -1
	fscfg.OpenRetryBase = -1
	fs := simfs.New(e, fscfg, rng.New(7).Derive("fs"))
	rt := darshan.NewRuntime(darshan.Config{JobID: 9, UID: 1, Exe: "/bin/trace", DXT: true}, 0)

	node := ldms.NewDaemon("ldmsd-node", "nid00001")
	head := ldms.NewAggregator("agg-head", "head")
	remote := ldms.NewAggregator("agg-remote", "shirley")
	ldms.Relay(e, node, head.Daemon, connector.DefaultTag, 100*time.Microsecond)
	ldms.Relay(e, head.Daemon, remote.Daemon, connector.DefaultTag, 100*time.Microsecond)

	sc := dsos.NewCluster(2, "trace-darshan")
	if err := dsos.SetupDarshan(sc); err != nil {
		t.Fatal(err)
	}
	client := dsos.Connect(sc)
	dstore := ldms.NewDSOSStore(client)
	capture := &captureStore{inner: dstore}
	dedup := ldms.NewDedupStore(capture)
	remote.AttachStore(connector.DefaultTag, dedup)

	reg := obs.NewRegistry()
	clock := obs.Clock(e.Now)
	node.Bus().Instrument(hopNodeBus, clock)
	head.Daemon.Bus().Instrument(hopHeadBus, clock)
	remote.Daemon.Bus().Instrument(hopRemoteBus, clock)
	dedup.Instrument(reg, clock)
	dstore.Instrument(reg, clock)

	conn := connector.Attach(rt, connector.Config{
		Encoder: jsonmsg.FastEncoder{},
		Meta:    jsonmsg.JobMeta{UID: 1, JobID: 9, Exe: "/bin/trace"},
	}, func(string) *ldms.Daemon { return node })
	conn.Instrument(reg)

	e.Spawn("rank0", func(p *sim.Proc) {
		ctx := darshan.NewCtx(0, "nid00001", p, nil)
		f := darshan.OpenPosix(rt, fs, ctx, "/nscratch/trace", true)
		f.WriteFull(p, 0, 1<<20)
		f.Close(p)
		p.Sleep(time.Second) // let relayed messages arrive
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}

	if len(capture.recs) == 0 {
		t.Fatal("no records reached the store")
	}
	for _, r := range capture.recs {
		spans := r.Spans()
		hops := make([]string, len(spans))
		for i, s := range spans {
			hops[i] = s.Hop
		}
		next := 0
		for _, h := range hops {
			if next < len(pipelineHops) && h == pipelineHops[next] {
				next++
			}
		}
		if next != len(pipelineHops) {
			t.Fatalf("span chain %v does not cover every hop %v in order", hops, pipelineHops)
		}
		for i := 1; i < len(spans); i++ {
			if spans[i].At < spans[i-1].At {
				t.Fatalf("span timestamps regress: %v", spans)
			}
		}
	}
}

// TestChaosRunSnapshotCoversStages runs one fault-free chaos pipeline
// and asserts its telemetry snapshot has series for every stage, and
// that the rendered soak report embeds the snapshot.
func TestChaosRunSnapshotCoversStages(t *testing.T) {
	cfg := shortSoakConfig(7, 2, true)
	cfg.Scale = 0.005
	res, _, err := runChaosSoak(cfg, "oracle", nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Obs) == 0 {
		t.Fatal("chaos run produced no telemetry snapshot")
	}
	byName := map[string]float64{}
	for _, s := range res.Obs {
		byName[s.Name] = s.Value
	}
	tag := connector.DefaultTag
	mustPositive := []string{
		"dlc_connector_published_total",
		"dlc_connector_encode_cost_vns_count",
		`dlc_bus_published_total{bus="node",tag="` + tag + `"}`,
		`dlc_bus_published_total{bus="agg-head",tag="` + tag + `"}`,
		`dlc_bus_published_total{bus="agg-remote",tag="` + tag + `"}`,
		"dlc_dedup_stored_total",
		"dlc_store_dsos_messages_total",
		"dlc_store_dsos_objects_total",
		"dlc_dsos_origins_allocated_total",
		`dlc_dsos_shard_inserts_total{shard="dsosd0"}`,
	}
	for _, name := range mustPositive {
		if byName[name] <= 0 {
			t.Errorf("snapshot series %s = %v, want > 0", name, byName[name])
		}
	}
	// Present even when zero: retries and errors on a fault-free run,
	// encoded bytes because typed records are never wire-encoded in the
	// all-in-process topology (lazy encoding is the point).
	for _, name := range []string{
		"dlc_retry_retries_total",
		"dlc_store_dsos_errors_total",
		"dlc_connector_encoded_bytes_total",
	} {
		if _, ok := byName[name]; !ok {
			t.Errorf("snapshot is missing series %s", name)
		}
	}

	soak := &ChaosSoakResult{Label: "test", Oracle: *res}
	out := RenderChaosSoak(soak)
	if !strings.Contains(out, "pipeline stage snapshot (oracle run):") {
		t.Error("soak report does not embed the telemetry snapshot")
	}
	if !strings.Contains(out, "dlc_dedup_stored_total") {
		t.Error("soak report snapshot is missing stage series")
	}
}

// TestTelemetryDoesNotPerturbRun is the in-repo version of the CI
// determinism-regression job: the same seeded run, once bare and once
// with a registry attached and tracing on, must produce identical
// results — telemetry observes, never steers.
func TestTelemetryDoesNotPerturbRun(t *testing.T) {
	base := RunOptions{
		Seed: 5, JobID: 77, UID: 1, Exe: "/bin/x", FSKind: simfs.Lustre,
		Connector: true, Encoder: jsonmsg.FastEncoder{},
		App: func(env apps.Env) {
			cfg := apps.DefaultHACCIO(env.M.Nodes()[:2], 50_000)
			cfg.RanksPerNode = 4
			apps.RunHACCIO(env, cfg)
		},
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	prev := obs.SetTracing(true)
	withObs := base
	withObs.Telemetry = reg
	traced, err := Run(withObs)
	obs.SetTracing(prev)
	if err != nil {
		t.Fatal(err)
	}

	if plain.Runtime != traced.Runtime || plain.Events != traced.Events ||
		plain.Messages != traced.Messages || plain.Rate != traced.Rate ||
		plain.Conn != traced.Conn {
		t.Fatalf("telemetry perturbed the run:\nbare   %+v\ntraced %+v", plain, traced)
	}
	if reg.Value("dlc_connector_published_total") == 0 {
		t.Fatal("telemetry run recorded nothing")
	}
	if reg.Value(`dlc_bus_published_total{bus="node",tag="`+connector.DefaultTag+`"}`) == 0 {
		t.Fatal("node bus stage not collected")
	}
}
