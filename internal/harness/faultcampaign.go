package harness

import (
	"fmt"
	"strings"
	"time"

	"darshanldms/internal/apps"
	"darshanldms/internal/cluster"
	"darshanldms/internal/connector"
	"darshanldms/internal/darshan"
	"darshanldms/internal/faults"
	"darshanldms/internal/jsonmsg"
	"darshanldms/internal/ldms"
	"darshanldms/internal/obs"
	"darshanldms/internal/rng"
	"darshanldms/internal/sim"
	"darshanldms/internal/simfs"
	"darshanldms/internal/streams"
)

// The fault campaign reruns the HACC-IO monitoring pipeline under a set of
// fault profiles and reports what the stream lost, kept and recovered. It
// builds its own pipeline (mirroring Run's topology with fault-injectable
// links) rather than touching Run, so the paper campaigns stay bit-identical
// with faults disabled.

// FaultRunResult reports one pipeline execution under one fault profile.
type FaultRunResult struct {
	Profile      string
	Runtime      time.Duration
	Published    uint64          // connector messages published on node buses
	Delivered    uint64          // messages that reached the final store
	Dropped      uint64          // lost to partitions, stall overflow or store failure
	Recovered    uint64          // held during a stall/outage and delivered after it
	Duplicated   uint64          // tail frames re-delivered by replay-outage heals
	Deduped      uint64          // replayed deliveries suppressed before the store
	StoreRetries uint64          // store attempts retried by the ingest retry layer
	StoreDrops   uint64          // messages lost at the store after retries
	Log          []faults.Record // what fired, and when
	Obs          []obs.Sample    // per-stage telemetry snapshot, taken post-run
}

// FaultCampaignResult is a full campaign: a fault-free baseline plus one
// run per profile, all from the same seed.
type FaultCampaignResult struct {
	Label    string
	Seed     uint64
	Baseline FaultRunResult
	Runs     []FaultRunResult
}

// faultRunConfig carries the fixed workload parameters of a campaign.
type faultRunConfig struct {
	seed             uint64
	scale            float64
	particlesPerRank int64
	fsKind           simfs.Kind
}

// storeFailProb is the FlakyStore failure probability while the "store"
// toggle is active; with 4 retry attempts ~87% of hits still land.
const storeFailProb = 0.6

// runUnderFaults executes one HACC-IO job with fault-injectable links and
// the given profile applied. An empty profile is the baseline.
func runUnderFaults(cfg faultRunConfig, profile faults.Profile) (*FaultRunResult, error) {
	e := sim.NewEngine()
	defer e.Close()
	m := cluster.New(e, cluster.Voltrino())
	root := rng.New(cfg.seed)

	var fscfg simfs.Config
	if cfg.fsKind == simfs.Lustre {
		fscfg = simfs.DefaultLustre()
	} else {
		fscfg = simfs.DefaultNFS()
	}
	fscfg.Load = simfs.NominalLoad()
	fs := simfs.New(e, fscfg, root.Derive("fs"))

	rt := darshan.NewRuntime(darshan.Config{
		JobID: 1, UID: 99066, Exe: "/projects/hacc/hacc-io", DXT: true,
	}, 0)

	// Same two-level topology as Run, but every hop is a faults.Link the
	// controller can partition, slow down or stall.
	ctl := faults.NewController(e)
	head := ldms.NewAggregator("agg-head", m.Head().Name)
	remote := ldms.NewAggregator("agg-remote", "shirley")
	uplink := faults.NewLink(e, head.Daemon, remote.Daemon, connector.DefaultTag, 300*time.Microsecond)
	uplink.SetReplayTail(chaosReplayTail)
	ctl.RegisterLink("uplink", uplink)
	allLinks := []*faults.Link{uplink}
	nodeDaemons := map[string]*ldms.Daemon{}
	for _, n := range m.Nodes() {
		d := ldms.NewDaemon("ldmsd-"+n.Name, n.Name)
		d.AddSampler(ldms.NewMeminfoSampler(64<<20, root.DeriveN("meminfo", n.Index)))
		nodeDaemons[n.Name] = d
		l := faults.NewLink(e, d, head.Daemon, connector.DefaultTag, 150*time.Microsecond)
		ctl.RegisterLink("node-"+n.Name, l)
		allLinks = append(allLinks, l)
		head.AddProducer(d)
	}
	// Crashing the head aggregator cuts every link that touches it.
	crash, restart := faults.CrashDaemon(allLinks...)
	ctl.RegisterCrash("head", crash, restart)

	// Store path: counting store behind flaky injection behind the opt-in
	// retry layer (so StoreFault windows exercise retry-with-timeout),
	// behind the dedup layer (so replay-outage heals don't double count).
	count := &ldms.CountStore{}
	flaky := faults.NewFlakyStore(count, root.Derive("storefault"), storeFailProb)
	retry := ldms.NewRetryStore(flaky, ldms.RetryConfig{Attempts: 4})
	dedup := ldms.NewDedupStore(retry)
	storeHandle := remote.AttachStore(connector.DefaultTag, dedup)
	ctl.RegisterToggle("store", flaky.SetActive)

	conn := connector.Attach(rt, connector.Config{
		Encoder:        jsonmsg.FastEncoder{},
		Meta:           jsonmsg.JobMeta{UID: 99066, JobID: 1, Exe: "/projects/hacc/hacc-io"},
		ChargeOverhead: true,
	}, func(producer string) *ldms.Daemon { return nodeDaemons[producer] })

	// Telemetry mirrors the chaos soak: per-run registry, snapshot in
	// the report, hop stamps on the engine's virtual clock.
	reg := obs.NewRegistry()
	clock := obs.Clock(e.Now)
	conn.Instrument(reg)
	connector.Collect(reg, []*connector.Connector{conn})
	nodeBuses := make([]*streams.Bus, 0, len(nodeDaemons))
	for _, n := range m.Nodes() {
		d := nodeDaemons[n.Name]
		d.Bus().Instrument(hopNodeBus, clock)
		nodeBuses = append(nodeBuses, d.Bus())
	}
	collectBusGroup(reg, hopNodeBus, nodeBuses)
	head.Daemon.Bus().Instrument(hopHeadBus, clock)
	head.Daemon.Bus().Collect(reg, hopHeadBus)
	remote.Daemon.Bus().Instrument(hopRemoteBus, clock)
	remote.Daemon.Bus().Collect(reg, hopRemoteBus)
	dedup.Instrument(reg, clock)
	retry.Collect(reg)
	reg.RegisterCollector(func(emit func(string, float64)) {
		emit("dlc_store_count_messages_total", float64(count.Count()))
	})

	if err := ctl.Apply(profile); err != nil {
		return nil, err
	}

	hacc := apps.DefaultHACCIO(m.Nodes()[:16], scaleInt64(cfg.particlesPerRank, cfg.scale))
	apps.RunHACCIO(apps.Env{E: e, M: m, FS: fs, RT: rt}, hacc)
	if err := e.Run(0); err != nil {
		return nil, err
	}
	runtime := e.Now()
	if err := e.Drain(runtime + time.Second); err != nil {
		return nil, err
	}

	res := &FaultRunResult{
		Profile:   profile.Name,
		Runtime:   runtime,
		Published: conn.Stats().Published,
		Delivered: count.Count(),
		Log:       ctl.Log(),
	}
	for _, l := range allLinks {
		st := l.Stats()
		res.Dropped += st.Dropped
		res.Recovered += st.Recovered
		res.Duplicated += st.Duplicated
	}
	res.Deduped = dedup.Duplicates()
	retries, failures, _ := retry.Stats()
	res.StoreRetries = retries
	res.StoreDrops = failures
	res.Dropped += failures
	res.Obs = reg.Snapshot()
	_ = storeHandle
	return res, nil
}

// DefaultFaultProfiles builds the standard campaign scenarios scaled to the
// measured fault-free runtime: a head-aggregator crash with restart, an
// uplink partition, a slow subscriber stall on the uplink, a latency spike,
// a flaky-store window behind the retry layer, and a replay-outage on the
// uplink (an at-least-once reconnect whose re-sent tail the dedup layer
// must absorb).
func DefaultFaultProfiles(runtime time.Duration) []faults.Profile {
	frac := func(f float64) time.Duration {
		return time.Duration(float64(runtime) * f)
	}
	return []faults.Profile{
		{Name: "daemon-crash", Events: []faults.Event{
			{Kind: faults.DaemonCrash, Target: "head", At: frac(0.30), Duration: frac(0.20)},
		}},
		{Name: "link-partition", Events: []faults.Event{
			{Kind: faults.LinkPartition, Target: "uplink", At: frac(0.25), Duration: frac(0.25)},
		}},
		{Name: "slow-subscriber", Events: []faults.Event{
			{Kind: faults.SlowSubscriber, Target: "uplink", At: frac(0.25), Duration: frac(0.40)},
		}},
		{Name: "latency-spike", Events: []faults.Event{
			{Kind: faults.LatencySpike, Target: "uplink", At: frac(0.20), Duration: frac(0.50), Extra: 20 * time.Millisecond},
		}},
		{Name: "flaky-store", Events: []faults.Event{
			{Kind: faults.StoreFault, Target: "store", At: frac(0.20), Duration: frac(0.50)},
		}},
		{Name: "replay-outage", Events: []faults.Event{
			{Kind: faults.ReplayOutage, Target: "uplink", At: frac(0.30), Duration: frac(0.25)},
		}},
	}
}

// FaultCampaign measures a fault-free baseline of the HACC-IO pipeline,
// derives the default profiles from its runtime, and reruns the pipeline
// under each. Everything runs in virtual time from the one seed, so the
// whole campaign is deterministic.
func FaultCampaign(seed uint64, scale float64, particlesPerRank int64, fsKind simfs.Kind) (*FaultCampaignResult, error) {
	cfg := faultRunConfig{seed: seed, scale: scale, particlesPerRank: particlesPerRank, fsKind: fsKind}
	baseline, err := runUnderFaults(cfg, faults.Profile{Name: "baseline"})
	if err != nil {
		return nil, err
	}
	out := &FaultCampaignResult{
		Label:    fmt.Sprintf("HACC-IO %s %dM", fsKind, particlesPerRank/1_000_000),
		Seed:     seed,
		Baseline: *baseline,
	}
	for _, p := range DefaultFaultProfiles(baseline.Runtime) {
		r, err := runUnderFaults(cfg, p)
		if err != nil {
			return nil, err
		}
		out.Runs = append(out.Runs, *r)
	}
	return out, nil
}

// RenderFaultCampaign formats the campaign as a delivered/dropped/recovered
// summary table plus each run's fault log.
func RenderFaultCampaign(c *FaultCampaignResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault campaign: %s (seed %d, baseline runtime %.3fs)\n", c.Label, c.Seed, c.Baseline.Runtime.Seconds())
	fmt.Fprintf(&b, "%-16s %10s %10s %9s %10s %11s %8s %8s %7s\n",
		"profile", "published", "delivered", "dropped", "recovered", "duplicated", "deduped", "retries", "loss%")
	row := func(r FaultRunResult) {
		loss := 0.0
		if r.Published > 0 {
			loss = 100 * float64(r.Dropped) / float64(r.Published)
		}
		fmt.Fprintf(&b, "%-16s %10d %10d %9d %10d %11d %8d %8d %6.2f%%\n",
			r.Profile, r.Published, r.Delivered, r.Dropped, r.Recovered, r.Duplicated, r.Deduped, r.StoreRetries, loss)
	}
	row(c.Baseline)
	for _, r := range c.Runs {
		row(r)
	}
	for _, r := range c.Runs {
		if len(r.Log) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n%s fault log:\n", r.Profile)
		for _, rec := range r.Log {
			fmt.Fprintf(&b, "  %s\n", rec)
		}
	}
	renderObsSection(&b, "pipeline stage snapshot (baseline run):", c.Baseline.Obs)
	return b.String()
}
