package harness

import (
	"strings"
	"testing"
	"time"
)

// shortRebalanceConfig is the CI-sized soak: fewer schedules and a
// smaller workload, same topology and invariants. Used by
// `make topo-smoke` under the race detector.
func shortRebalanceConfig(seed uint64, static bool) RebalanceSoakConfig {
	return RebalanceSoakConfig{
		Seed: seed, Schedules: 5, EventsPerSchedule: 5,
		Leaves: 8, MsgsPerLeaf: 80, Horizon: 4 * time.Second,
		Shards: 3, Static: static,
	}
}

// The managed configuration (aggregation tree with failover + hash ring
// with live rebalancing) must survive every schedule — aggregator
// crashes, partitions, shard crashes and a grow + shrink mid-soak — with
// zero invariant violations.
func TestRebalanceSoakDurable(t *testing.T) {
	res, err := RebalanceSoak(shortRebalanceConfig(2026, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("rebalance soak violated invariants:\n%s", RenderRebalanceSoak(res))
	}
	if len(res.Calm.Violations) != 0 {
		t.Fatalf("calm run self-check failed: %v", res.Calm.Violations)
	}
	if res.Calm.Migrations < 2 {
		t.Fatalf("calm run completed %d migrations, want the grow and the shrink", res.Calm.Migrations)
	}
	if res.Calm.Moved == 0 || res.Calm.Acked == 0 || res.Calm.Merged == 0 {
		t.Fatalf("calm run moved/stored nothing: %+v", res.Calm)
	}
	// The soak is only meaningful if the chaos actually bit: across the
	// schedules we need re-homings, heartbeat misses, shard-down
	// backpressure and completed migrations to all have fired.
	var rehomes, misses, naks, migrations uint64
	crashes := 0
	for _, r := range res.Runs {
		rehomes += r.Rehomes
		misses += r.Misses
		naks += r.Naks
		migrations += r.Migrations
		for _, rec := range r.Log {
			if strings.Contains(rec.Msg, "crash daemon") {
				crashes++
			}
		}
	}
	if crashes == 0 {
		t.Fatal("no daemon crash was scheduled across the soak; schedules too tame")
	}
	if rehomes == 0 || misses == 0 {
		t.Fatalf("no failover fired (rehomes %d, misses %d); aggregator faults never bit", rehomes, misses)
	}
	if naks == 0 {
		t.Fatal("no store-pump naks; shard-down backpressure never exercised")
	}
	if migrations == 0 {
		t.Fatal("no migration completed under faults")
	}
}

// The static-placement baseline must demonstrably lose acked data under
// the same schedules — that is the gap live rebalancing closes.
func TestRebalanceSoakStaticLosesData(t *testing.T) {
	res, err := RebalanceSoak(shortRebalanceConfig(2026, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Fatal("static baseline reported no violations; the harness cannot detect loss")
	}
	lost := false
	for _, r := range res.Runs {
		for _, v := range r.Violations {
			if strings.HasPrefix(v, "acked-but-lost") {
				lost = true
			}
		}
	}
	if !lost {
		t.Fatal("static baseline never lost acked data; the decommission scenario is toothless")
	}
}

// A soak must replay bit-for-bit from its seed: same config, same
// rendered report.
func TestRebalanceSoakDeterministic(t *testing.T) {
	cfg := shortRebalanceConfig(7, false)
	cfg.Schedules = 2
	a, err := RebalanceSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RebalanceSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := RenderRebalanceSoak(a), RenderRebalanceSoak(b)
	if ra != rb {
		t.Fatalf("soak not deterministic:\n--- first\n%s\n--- second\n%s", ra, rb)
	}
}

// Different seeds must produce different fault schedules — the soak
// explores, not repeats.
func TestRebalanceSoakSeedsDiffer(t *testing.T) {
	cfg := shortRebalanceConfig(1, false)
	cfg.Schedules = 1
	a, err := RebalanceSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := RebalanceSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Runs[0].Log) == len(b.Runs[0].Log) {
		same := true
		for i := range a.Runs[0].Log {
			if a.Runs[0].Log[i] != b.Runs[0].Log[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("two seeds produced identical fault logs")
		}
	}
}
