// Package harness orchestrates the paper's experiments: it assembles the
// full pipeline for each job run (simulated cluster + file system + Darshan
// runtime + per-node LDMSDs + two-level aggregation + DSOS or counting
// store + the connector), executes repetition campaigns with per-campaign
// load epochs (the Darshan-only baselines ran 1-2 weeks before the
// connector runs), and regenerates every table and figure of the
// evaluation section.
package harness

import (
	"time"

	"darshanldms/internal/analysis"
	"darshanldms/internal/apps"
	"darshanldms/internal/cluster"
	"darshanldms/internal/connector"
	"darshanldms/internal/darshan"
	"darshanldms/internal/dsos"
	"darshanldms/internal/jsonmsg"
	"darshanldms/internal/ldms"
	"darshanldms/internal/obs"
	"darshanldms/internal/rng"
	"darshanldms/internal/sim"
	"darshanldms/internal/simfs"
	"darshanldms/internal/streams"
)

// RunOptions configures one job execution.
type RunOptions struct {
	Seed   uint64 // run-level noise seed
	JobID  int64
	UID    int
	Exe    string
	FSKind simfs.Kind
	// Load is the campaign epoch profile; nil selects nominal. The profile
	// is copied per run so congestion events can be added safely.
	Load       *simfs.LoadProfile
	Congestion []simfs.CongestionEvent
	// Connector enables the Darshan-LDMS Connector (the dC runs); when
	// false the run is Darshan-only.
	Connector   bool
	Encoder     jsonmsg.Encoder // nil: Sprintf (the paper's implementation)
	SampleEvery int
	// Store is an optional shared DSOS client; events are retained there
	// (figure campaigns). When nil a counting store is used (overhead
	// campaigns need rates, not data).
	Store *dsos.Client
	// App spawns the job's ranks on the environment.
	App func(env apps.Env)
	// RunLimit bounds the virtual runtime (0 = none), a failsafe.
	RunLimit time.Duration
	// SampleFSLoad, when positive, runs an LDMS fsload sampler at this
	// interval so the run's system-behaviour timeline can be correlated
	// with the I/O stream afterwards.
	SampleFSLoad time.Duration
	// Telemetry, when non-nil, attaches every pipeline stage of this
	// run to the given obs registry (virtual-clock trace hops included).
	// Instrumentation must not perturb the run: a seeded run's results
	// are bit-identical with or without it.
	Telemetry *obs.Registry
}

// RunResult reports one job execution.
type RunResult struct {
	JobID      int64
	Runtime    time.Duration // virtual wall-clock of the job
	Events     int64         // Darshan-instrumented events
	Messages   uint64        // messages received at the final store
	Rate       float64       // messages per virtual second
	Conn       connector.Stats
	Summary    *darshan.Summary
	LoadSeries []analysis.LoadSample // fsload samples (when sampling was on)
}

// Run executes one job on a fresh simulated machine.
func Run(opts RunOptions) (*RunResult, error) {
	e := sim.NewEngine()
	defer e.Close()
	m := cluster.New(e, cluster.Voltrino())
	root := rng.New(opts.Seed)

	var fscfg simfs.Config
	if opts.FSKind == simfs.Lustre {
		fscfg = simfs.DefaultLustre()
	} else {
		fscfg = simfs.DefaultNFS()
	}
	load := simfs.NominalLoad()
	if opts.Load != nil {
		cp := *opts.Load
		load = &cp
	}
	load.Events = append(append([]simfs.CongestionEvent(nil), load.Events...), opts.Congestion...)
	fscfg.Load = load
	fs := simfs.New(e, fscfg, root.Derive("fs"))

	rt := darshan.NewRuntime(darshan.Config{
		JobID: opts.JobID,
		UID:   opts.UID,
		Exe:   opts.Exe,
		DXT:   true,
	}, 0)

	// LDMS topology: one LDMSD per compute node, aggregated at the head
	// node and again at the analysis cluster, where the store attaches.
	nodeDaemons := map[string]*ldms.Daemon{}
	head := ldms.NewAggregator("agg-head", m.Head().Name)
	remote := ldms.NewAggregator("agg-remote", "shirley")
	ldms.Relay(e, head.Daemon, remote.Daemon, connector.DefaultTag, 300*time.Microsecond)
	for _, n := range m.Nodes() {
		d := ldms.NewDaemon("ldmsd-"+n.Name, n.Name)
		d.AddSampler(ldms.NewMeminfoSampler(64<<20, root.DeriveN("meminfo", n.Index)))
		nodeDaemons[n.Name] = d
		ldms.Relay(e, d, head.Daemon, connector.DefaultTag, 150*time.Microsecond)
		head.AddProducer(d)
	}
	if opts.SampleFSLoad > 0 {
		head.AddSampler(ldms.NewFSLoadSampler(fs))
		head.StartSampling(e, opts.SampleFSLoad)
	}

	count := &ldms.CountStore{}
	var storeHandle *ldms.StoreHandle
	var dstore *ldms.DSOSStore
	if opts.Store != nil {
		dstore = ldms.NewDSOSStore(opts.Store)
		storeHandle = remote.AttachStore(connector.DefaultTag, dstore)
	} else {
		storeHandle = remote.AttachStore(connector.DefaultTag, count)
	}
	_ = storeHandle

	var conn *connector.Connector
	if opts.Connector {
		conn = connector.Attach(rt, connector.Config{
			Encoder:        opts.Encoder,
			SampleEvery:    opts.SampleEvery,
			Meta:           jsonmsg.JobMeta{UID: int64(opts.UID), JobID: opts.JobID, Exe: opts.Exe},
			ChargeOverhead: true,
		}, func(producer string) *ldms.Daemon { return nodeDaemons[producer] })
	}

	// Opt-in telemetry (dlc-experiments -telemetry): same wiring as the
	// always-on chaos-soak registry, against the caller's registry.
	if opts.Telemetry != nil {
		reg := opts.Telemetry
		clock := obs.Clock(e.Now)
		if conn != nil {
			conn.Instrument(reg)
			connector.Collect(reg, []*connector.Connector{conn})
		}
		nodeBuses := make([]*streams.Bus, 0, len(nodeDaemons))
		for _, n := range m.Nodes() {
			d := nodeDaemons[n.Name]
			d.Bus().Instrument(hopNodeBus, clock)
			nodeBuses = append(nodeBuses, d.Bus())
		}
		collectBusGroup(reg, hopNodeBus, nodeBuses)
		head.Daemon.Bus().Instrument(hopHeadBus, clock)
		head.Daemon.Bus().Collect(reg, hopHeadBus)
		remote.Daemon.Bus().Instrument(hopRemoteBus, clock)
		remote.Daemon.Bus().Collect(reg, hopRemoteBus)
		if dstore != nil {
			dstore.Instrument(reg, clock)
		} else {
			reg.RegisterCollector(func(emit func(string, float64)) {
				emit("dlc_store_count_messages_total", float64(count.Count()))
			})
		}
	}

	opts.App(apps.Env{E: e, M: m, FS: fs, RT: rt})
	if err := e.Run(opts.RunLimit); err != nil {
		return nil, err
	}
	runtime := e.Now()
	// Flush stream messages still in flight between aggregation hops.
	if err := e.Drain(runtime + time.Second); err != nil {
		return nil, err
	}

	res := &RunResult{
		JobID:   opts.JobID,
		Runtime: runtime,
		Events:  rt.EventCount(),
	}
	res.Messages = storeHandle.Received()
	if res.Runtime > 0 {
		res.Rate = float64(res.Messages) / res.Runtime.Seconds()
	}
	if conn != nil {
		res.Conn = conn.Stats()
	}
	for _, set := range head.History() {
		res.LoadSeries = append(res.LoadSeries, analysis.LoadSample{
			Time: set.Timestamp.Seconds(),
			Load: set.Metrics["load_factor"],
		})
	}
	res.Summary = rt.Finalize(e.Now(), inferNProcs(rt))
	return res, nil
}

// inferNProcs derives the world size from the instrumented records (the
// harness does not know each app's rank count directly).
func inferNProcs(rt *darshan.Runtime) int {
	max := -1
	for _, r := range rt.Finalize(0, 0).Records {
		if r.Rank > max {
			max = r.Rank
		}
	}
	return max + 1
}
