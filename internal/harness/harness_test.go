package harness

import (
	"math"
	"strings"
	"testing"

	"darshanldms/internal/analysis"
	"darshanldms/internal/apps"
	"darshanldms/internal/jsonmsg"
	"darshanldms/internal/simfs"
)

func TestSingleRunProducesMessages(t *testing.T) {
	res, err := Run(RunOptions{
		Seed: 1, JobID: 10, UID: 99066, Exe: "/bin/x", FSKind: simfs.Lustre,
		Connector: true, Encoder: jsonmsg.FastEncoder{},
		App: func(env apps.Env) {
			cfg := apps.DefaultHACCIO(env.M.Nodes()[:2], 50_000)
			cfg.RanksPerNode = 4
			apps.RunHACCIO(env, cfg)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime <= 0 || res.Events == 0 {
		t.Fatalf("result %+v", res)
	}
	// Every instrumented event must arrive at the final store: the
	// connector publishes each one and the Drain flushes the hops.
	if res.Messages != uint64(res.Events) {
		t.Fatalf("messages %d != events %d", res.Messages, res.Events)
	}
	if res.Conn.Published != uint64(res.Events) || res.Conn.Dropped != 0 {
		t.Fatalf("connector stats %+v", res.Conn)
	}
	if res.Rate <= 0 {
		t.Fatal("rate not computed")
	}
}

func TestDarshanOnlyRunHasNoMessages(t *testing.T) {
	res, err := Run(RunOptions{
		Seed: 2, JobID: 11, FSKind: simfs.NFS,
		App: func(env apps.Env) {
			cfg := apps.DefaultHACCIO(env.M.Nodes()[:2], 50_000)
			cfg.RanksPerNode = 4
			apps.RunHACCIO(env, cfg)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 0 {
		t.Fatalf("darshan-only run produced %d messages", res.Messages)
	}
	if res.Events == 0 {
		t.Fatal("darshan should still count events")
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	opts := RunOptions{
		Seed: 42, JobID: 12, FSKind: simfs.Lustre, Connector: true,
		Encoder: jsonmsg.FastEncoder{},
		App: func(env apps.Env) {
			cfg := apps.DefaultHACCIO(env.M.Nodes()[:2], 80_000)
			cfg.RanksPerNode = 4
			apps.RunHACCIO(env, cfg)
		},
	}
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != b.Runtime || a.Events != b.Events || a.Messages != b.Messages {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestTableIIaShapes(t *testing.T) {
	cells, err := TableIIa(7, 3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells %d", len(cells))
	}
	byName := map[string]*CellResult{}
	for _, c := range cells {
		byName[c.Name] = c
	}
	nfsColl := byName["NFS/collective=true"]
	nfsInd := byName["NFS/collective=false"]
	lusColl := byName["Lustre/collective=true"]
	lusInd := byName["Lustre/collective=false"]

	// Runtime ordering of Table IIa: Lustre coll < Lustre indep < NFS
	// indep < NFS coll.
	if !(lusColl.AvgDarshan < lusInd.AvgDarshan) {
		t.Errorf("Lustre: collective (%.1f) should beat independent (%.1f)", lusColl.AvgDarshan, lusInd.AvgDarshan)
	}
	if !(nfsInd.AvgDarshan < nfsColl.AvgDarshan) {
		t.Errorf("NFS: independent (%.1f) should beat collective (%.1f)", nfsInd.AvgDarshan, nfsColl.AvgDarshan)
	}
	if !(lusInd.AvgDarshan < nfsInd.AvgDarshan) {
		t.Errorf("Lustre indep (%.1f) should beat NFS indep (%.1f)", lusInd.AvgDarshan, nfsInd.AvgDarshan)
	}
	// Message ordering: NFS coll > Lustre coll > Lustre indep > NFS indep.
	if !(nfsColl.AvgMessages > lusColl.AvgMessages &&
		lusColl.AvgMessages > lusInd.AvgMessages &&
		lusInd.AvgMessages > nfsInd.AvgMessages) {
		t.Errorf("message ordering violated: %v %v %v %v",
			nfsColl.AvgMessages, lusColl.AvgMessages, lusInd.AvgMessages, nfsInd.AvgMessages)
	}
	// Overheads are small (the rates are <100 msg/s in the paper): all
	// within a modest band, far below HMMER's blowup.
	for _, c := range cells {
		if math.Abs(c.OverheadPct) > 40 {
			t.Errorf("cell %s overhead %.1f%% implausibly large", c.Name, c.OverheadPct)
		}
	}
}

func TestTableIIcHMMERBlowup(t *testing.T) {
	cells, err := TableIIc(11, 2, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells %d", len(cells))
	}
	for _, c := range cells {
		if c.OverheadPct < 100 {
			t.Errorf("HMMER %s overhead %.1f%%, want multi-x blowup", c.Name, c.OverheadPct)
		}
	}
	// Lustre's overhead percentage exceeds NFS's (more messages on a much
	// shorter baseline), and its message count is higher.
	if !(cells[1].OverheadPct > cells[0].OverheadPct) {
		t.Errorf("Lustre blowup (%.0f%%) should exceed NFS (%.0f%%)", cells[1].OverheadPct, cells[0].OverheadPct)
	}
	if !(cells[1].AvgMessages > cells[0].AvgMessages) {
		t.Errorf("Lustre messages (%.0f) should exceed NFS (%.0f)", cells[1].AvgMessages, cells[0].AvgMessages)
	}
}

func TestEncoderAblationShapes(t *testing.T) {
	rows, err := EncoderAblation(13, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows %d", len(rows))
	}
	byKey := map[string]*AblationResult{}
	for _, r := range rows {
		byKey[string(r.FSKind)+"/"+r.Encoder] = r
	}
	for _, fs := range []string{"NFS", "Lustre"} {
		sprintf := byKey[fs+"/sprintf"].OverheadPct
		fast := byKey[fs+"/fast"].OverheadPct
		none := byKey[fs+"/none"].OverheadPct
		if !(sprintf > fast && fast > none) {
			t.Errorf("%s: overhead ordering sprintf(%.1f) > fast(%.1f) > none(%.1f) violated", fs, sprintf, fast, none)
		}
		if none > 5 {
			t.Errorf("%s: no-format overhead %.2f%%, want ~0.4%%", fs, none)
		}
	}
}

func TestMPIIOFigureCampaignAnomaly(t *testing.T) {
	camp, err := MPIIOFigureCampaign(17, 3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Figure7(camp)
	if err != nil {
		t.Fatal(err)
	}
	durs := map[int64]map[string]float64{}
	for _, r := range rows {
		if durs[r.JobID] == nil {
			durs[r.JobID] = map[string]float64{}
		}
		durs[r.JobID][r.Op] = r.MeanDur
	}
	// Job 2 ran congested with dropped caches: reads orders of magnitude
	// slower than the cached reads of jobs 1 and 3; writes slower too.
	if durs[2]["read"] < 20*durs[1]["read"] {
		t.Errorf("job2 reads (%.3fs) should dwarf job1 reads (%.3fs)", durs[2]["read"], durs[1]["read"])
	}
	if durs[2]["write"] <= durs[1]["write"] {
		t.Errorf("job2 writes (%.1fs) should exceed job1 (%.1fs)", durs[2]["write"], durs[1]["write"])
	}

	pts, err := Figure8(camp)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no scatter points")
	}
	// Reads cluster at the end of the run.
	var firstRead, lastWrite float64
	firstRead = math.MaxFloat64
	for _, p := range pts {
		if p.Op == "read" && p.Time < firstRead {
			firstRead = p.Time
		}
		if p.Op == "write" && p.Time > lastWrite {
			lastWrite = p.Time
		}
	}
	if firstRead < lastWrite*0.6 {
		t.Errorf("reads (first at %.0fs) should follow the write phases (last at %.0fs)", firstRead, lastWrite)
	}

	bins, err := Figure9(camp, 20)
	if err != nil {
		t.Fatal(err)
	}
	var wBytes, rBytes float64
	for _, b := range bins {
		wBytes += b.WriteBytes
		rBytes += b.ReadBytes
	}
	if wBytes <= rBytes {
		t.Errorf("written bytes (%.0f) should exceed read-back (%.0f)", wBytes, rBytes)
	}

	// The anomaly detector must flag job 2's reads automatically.
	anoms, err := Diagnose(camp)
	if err != nil {
		t.Fatal(err)
	}
	foundJob2Read := false
	for _, a := range anoms {
		if a.JobID == 2 && a.Op == "read" {
			foundJob2Read = true
		}
		if a.JobID != 2 {
			t.Errorf("false positive: %+v", a)
		}
	}
	if !foundJob2Read {
		t.Errorf("job 2 read anomaly not detected: %+v", anoms)
	}
}

func TestFigure6PerNodeVariation(t *testing.T) {
	rows, err := Figure6(23, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// 16 nodes x 2 jobs x up to 2 ops.
	nodes := map[string]bool{}
	counts := map[int]bool{}
	for _, r := range rows {
		nodes[r.Node] = true
		if r.Op == "open" {
			counts[r.Count] = true
		}
	}
	if len(nodes) != 16 {
		t.Fatalf("nodes %d", len(nodes))
	}
	if len(counts) < 2 {
		t.Errorf("open counts identical across all nodes/jobs: %v (expected per-node variation)", counts)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	cells, err := TableIIc(29, 1, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	text := RenderTableII("Table IIc: HMMER", cells)
	if !strings.Contains(text, "Overhead") || !strings.Contains(text, "NFS") {
		t.Fatalf("table render:\n%s", text)
	}
	camp, err := MPIIOFigureCampaign(31, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	f7, _ := Figure7(camp)
	if out := RenderFigure7(f7); !strings.Contains(out, "Figure 7") {
		t.Fatal("figure 7 render")
	}
	f8, _ := Figure8(camp)
	if out := RenderFigure8(f8); !strings.Contains(out, "Figure 8") {
		t.Fatal("figure 8 render")
	}
	f9, _ := Figure9(camp, 10)
	if out := RenderFigure9(f9); !strings.Contains(out, "Figure 9") {
		t.Fatal("figure 9 render")
	}
	f5 := map[string][]analysis.OpCountStat{"HACC": {{Op: "write", Mean: 10, CI95: 1, PerJob: []float64{9, 11}}}}
	if out := RenderFigure5(f5); !strings.Contains(out, "write") {
		t.Fatal("figure 5 render")
	}
	f6 := []analysis.NodeOpCount{{Node: "nid00040", JobID: 1, Op: "open", Count: 33}}
	if out := RenderFigure6(f6); !strings.Contains(out, "nid00040") {
		t.Fatal("figure 6 render")
	}
	abl := []*AblationResult{{Encoder: "none", FSKind: simfs.NFS, OverheadPct: 0.4}}
	if out := RenderAblation(abl); !strings.Contains(out, "none") {
		t.Fatal("ablation render")
	}
}

func TestCorrelateLoadIOIdentifiesSystemCause(t *testing.T) {
	camp, err := MPIIOFigureCampaign(19, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := CorrelateLoadIO(camp)
	if err != nil {
		t.Fatal(err)
	}
	// Queueing follows load everywhere, so every job correlates positively;
	// the congested job must too.
	for job, r := range corr {
		if r < 0 {
			t.Errorf("job %d load-I/O correlation %.2f, want >= 0", job, r)
		}
	}
	if corr[2] < 0.05 {
		t.Errorf("job 2 load-I/O correlation %.2f, want positive", corr[2])
	}
	// The root-cause signal: job 2's sampled load level is visibly higher
	// than the clean jobs' — the system, not the application, changed.
	meanLoad := func(job int64) float64 {
		var s float64
		for _, ls := range camp.Load[job] {
			s += ls.Load
		}
		return s / float64(len(camp.Load[job]))
	}
	if meanLoad(2) < 1.15*meanLoad(1) || meanLoad(2) < 1.15*meanLoad(3) {
		t.Errorf("job 2 mean load %.2f should clearly exceed jobs 1 (%.2f) and 3 (%.2f)",
			meanLoad(2), meanLoad(1), meanLoad(3))
	}
}

func TestSamplingSweepMonotone(t *testing.T) {
	points, err := SamplingSweep(37, 1, 0.005, []int{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points %d", len(points))
	}
	// Within each FS, overhead must fall as sampling thins the stream, and
	// coverage must track 1/N.
	byFS := map[simfs.Kind][]*SweepPoint{}
	for _, p := range points {
		byFS[p.FSKind] = append(byFS[p.FSKind], p)
	}
	for fs, pts := range byFS {
		for i := 1; i < len(pts); i++ {
			if pts[i].OverheadPct >= pts[i-1].OverheadPct {
				t.Errorf("%s: overhead did not fall: every-%d %.1f%% -> every-%d %.1f%%",
					fs, pts[i-1].SampleEvery, pts[i-1].OverheadPct, pts[i].SampleEvery, pts[i].OverheadPct)
			}
		}
		for _, p := range pts {
			want := 1.0 / float64(p.SampleEvery)
			if p.Coverage < want*0.9 || p.Coverage > want*1.1 {
				t.Errorf("%s every-%d: coverage %.3f, want ~%.3f", fs, p.SampleEvery, p.Coverage, want)
			}
		}
	}
}
