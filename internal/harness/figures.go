package harness

import (
	"fmt"
	"time"

	"darshanldms/internal/analysis"
	"darshanldms/internal/apps"
	"darshanldms/internal/dsos"
	"darshanldms/internal/jsonmsg"
	"darshanldms/internal/rng"
	"darshanldms/internal/simfs"
)

// FigureCampaign is a set of jobs whose connector events were retained in a
// DSOS cluster, ready for the analysis modules (the paper's Grafana path).
type FigureCampaign struct {
	Client *dsos.Client
	JobIDs []int64
	NRanks int
	Label  string
	// Load holds each job's sampled file-system load timeline (the LDMS
	// fsload sampler), for I/O-vs-system correlation.
	Load map[int64][]analysis.LoadSample
}

// newStore builds a 4-daemon DSOS cluster with the darshan schema.
func newStore() (*dsos.Client, error) {
	cl := dsos.NewCluster(4, "darshan_data")
	if err := dsos.SetupDarshan(cl); err != nil {
		return nil, err
	}
	return dsos.Connect(cl), nil
}

// HACCFigureCampaign runs `jobs` repetitions of one HACC-IO configuration
// with the connector storing to DSOS.
func HACCFigureCampaign(seed uint64, jobs int, scale float64, fsKind simfs.Kind, particlesPerRank int64) (*FigureCampaign, error) {
	client, err := newStore()
	if err != nil {
		return nil, err
	}
	root := rng.New(seed)
	label := fmt.Sprintf("HACC-IO %s %dM", fsKind, particlesPerRank/1_000_000)
	camp := &FigureCampaign{Client: client, Label: label}
	epoch := simfs.DrawEpoch(root.Derive("epoch"), 0.15)
	var nranks int
	for j := 0; j < jobs; j++ {
		jobID := int64(j + 1)
		_, err := Run(RunOptions{
			Seed:      root.DeriveN("job", j).Uint64(),
			JobID:     jobID,
			UID:       99066,
			Exe:       "/projects/hacc/hacc-io",
			FSKind:    fsKind,
			Load:      repLoad(epoch, root.DeriveN("load", j)),
			Connector: true,
			Encoder:   jsonmsg.FastEncoder{},
			Store:     client,
			App: func(env apps.Env) {
				cfg := apps.DefaultHACCIO(env.M.Nodes()[:16], scaleInt64(particlesPerRank, scale))
				nranks = cfg.Ranks()
				apps.RunHACCIO(env, cfg)
			},
		})
		if err != nil {
			return nil, err
		}
		camp.JobIDs = append(camp.JobIDs, jobID)
	}
	camp.NRanks = nranks
	return camp, nil
}

// MPIIOFigureCampaign runs `jobs` repetitions of the non-collective NFS
// MPI-IO-TEST configuration, with the *second* job executing during a
// file-system congestion window that also defeats the client cache — the
// anomaly visible in Figures 7, 8 and 9 ("job_id 2").
func MPIIOFigureCampaign(seed uint64, jobs int, scale float64) (*FigureCampaign, error) {
	client, err := newStore()
	if err != nil {
		return nil, err
	}
	root := rng.New(seed)
	camp := &FigureCampaign{
		Client: client,
		Label:  "MPI-IO-TEST NFS independent",
		Load:   map[int64][]analysis.LoadSample{},
	}
	epoch := simfs.DrawEpoch(root.Derive("epoch"), 0.08)
	var nranks int
	for j := 0; j < jobs; j++ {
		jobID := int64(j + 1)
		var congestion []simfs.CongestionEvent
		if jobID == 2 {
			congestion = []simfs.CongestionEvent{{
				Start:         time.Duration(250*scale) * time.Second,
				Factor:        1.5,
				CacheMissProb: 0.25,
			}}
		}
		res, err := Run(RunOptions{
			Seed:         root.DeriveN("job", j).Uint64(),
			JobID:        jobID,
			UID:          99066,
			Exe:          "/projects/darshan/tests/mpi-io-test",
			FSKind:       simfs.NFS,
			Load:         repLoad(epoch, root.DeriveN("load", j)),
			Congestion:   congestion,
			Connector:    true,
			Encoder:      jsonmsg.FastEncoder{},
			Store:        client,
			SampleFSLoad: 5 * time.Second,
			App: func(env apps.Env) {
				cfg := apps.DefaultMPIIOTest(env.M.Nodes()[:22], false)
				cfg.Iterations = scaleInt(10, scale)
				cfg.ReadBackIterations = scaleInt(2, scale)
				nranks = cfg.Ranks()
				apps.RunMPIIOTest(env, cfg)
			},
		})
		if err != nil {
			return nil, err
		}
		camp.JobIDs = append(camp.JobIDs, jobID)
		camp.Load[jobID] = res.LoadSeries
	}
	camp.NRanks = nranks
	return camp, nil
}

// CorrelateLoadIO returns, per job, the Pearson correlation between op
// durations and the sampled file-system load — strong values point the
// finger at the system rather than the application.
func CorrelateLoadIO(camp *FigureCampaign) (map[int64]float64, error) {
	out := map[int64]float64{}
	for _, job := range camp.JobIDs {
		pts, err := analysis.TimelineScatter(camp.Client, job)
		if err != nil {
			return nil, err
		}
		out[job] = analysis.CorrelateLoad(pts, camp.Load[job])
	}
	return out, nil
}

// Figure5 regenerates the Fig 5 dataset: per HACC configuration, the mean
// occurrence count of each operation over the campaign's jobs with 95% CI.
func Figure5(seed uint64, jobs int, scale float64) (map[string][]analysis.OpCountStat, error) {
	out := map[string][]analysis.OpCountStat{}
	for _, fsKind := range []simfs.Kind{simfs.NFS, simfs.Lustre} {
		for _, particles := range []int64{5_000_000, 10_000_000} {
			camp, err := HACCFigureCampaign(seed^uint64(particles)^rng.New(seed).Derive(string(fsKind)).Uint64(), jobs, scale, fsKind, particles)
			if err != nil {
				return nil, err
			}
			stats, err := analysis.OpCounts(camp.Client, camp.JobIDs)
			if err != nil {
				return nil, err
			}
			out[camp.Label] = stats
		}
	}
	return out, nil
}

// Figure6 regenerates the Fig 6 dataset: open/close request counts per
// node for two jobs of the HACC-IO Lustre 10M-particles configuration.
func Figure6(seed uint64, scale float64) ([]analysis.NodeOpCount, error) {
	camp, err := HACCFigureCampaign(seed, 2, scale, simfs.Lustre, 10_000_000)
	if err != nil {
		return nil, err
	}
	return analysis.PerNodeOps(camp.Client, camp.JobIDs, []string{"open", "close"})
}

// Figure7 regenerates the Fig 7 dataset from an MPI-IO figure campaign:
// read/write durations per rank per job.
func Figure7(camp *FigureCampaign) ([]analysis.JobOpDuration, error) {
	return analysis.PerRankDurations(camp.Client, camp.JobIDs, camp.NRanks)
}

// Diagnose runs the anomaly detector over a campaign — the automated
// version of spotting Fig 7's job 2.
func Diagnose(camp *FigureCampaign) ([]analysis.Anomaly, error) {
	return analysis.DetectAnomalies(camp.Client, camp.JobIDs, 3)
}

// Figure8 regenerates the Fig 8 dataset: the duration-vs-time scatter of
// the anomalous job (job_id 2).
func Figure8(camp *FigureCampaign) ([]analysis.ScatterPoint, error) {
	return analysis.TimelineScatter(camp.Client, 2)
}

// Figure9 regenerates the Fig 9 dataset: the Grafana-style aggregated byte
// timeline of job_id 2.
func Figure9(camp *FigureCampaign, bins int) ([]analysis.TimelineBin, error) {
	return analysis.BytesTimeline(camp.Client, 2, bins)
}
