package harness

import (
	"sort"
	"strings"

	"darshanldms/internal/obs"
	"darshanldms/internal/streams"
)

// This file wires the harness pipelines into the obs plane. Every
// chaos-soak and fault-campaign run carries its own per-run registry
// and the renderers embed the snapshot, so a report always shows the
// per-stage breakdown — where messages piled up, were absorbed or were
// dropped — next to the invariant audit. All collectors read stats the
// pipeline already keeps, at snapshot time only, so the runs (and the
// seeded tables derived from them) are bit-identical with or without
// the snapshot being taken.

// pipelineHops are the trace hops of the full harness pipeline in flow
// order: the connector's publish hook, the per-node daemon bus, the two
// aggregation levels, the dedup layer and the final store. The
// end-to-end trace test asserts a stored record was stamped at every
// one of them.
var pipelineHops = []string{
	hopConnector, hopNodeBus, hopHeadBus, hopRemoteBus, hopDedup, hopStore,
}

// Harness hop names. The connector, dedup and store stages stamp their
// own package-level hop names; these constants mirror them (the
// packages keep theirs unexported) so the harness names one flow.
const (
	hopConnector = "connector"
	hopNodeBus   = "node"
	hopHeadBus   = "agg-head"
	hopRemoteBus = "agg-remote"
	hopDedup     = "dedup"
	hopStore     = "store"
)

// collectBusGroup exports one summed set of dlc_bus_* series for a
// group of same-stage buses (the per-node daemon buses): per-node
// series would swamp a report with dozens of identical rows, and a
// stage-level diagnosis wants the aggregate anyway. Tags are the sorted
// union across the group, so the snapshot is deterministic.
func collectBusGroup(reg *obs.Registry, hop string, buses []*streams.Bus) {
	if reg == nil {
		return
	}
	reg.RegisterCollector(func(emit func(string, float64)) {
		tagSet := map[string]bool{}
		for _, b := range buses {
			for _, tag := range b.StatTags() {
				tagSet[tag] = true
			}
		}
		tags := make([]string, 0, len(tagSet))
		for tag := range tagSet {
			tags = append(tags, tag)
		}
		sort.Strings(tags)
		for _, tag := range tags {
			var published, delivered, dropped, subs uint64
			for _, b := range buses {
				st := b.Stats(tag)
				published += st.Published
				delivered += st.Delivered
				dropped += st.Dropped
				subs += uint64(b.SubscriberCount(tag))
			}
			labels := `{bus="` + hop + `",tag="` + tag + `"}`
			emit("dlc_bus_published_total"+labels, float64(published))
			emit("dlc_bus_delivered_total"+labels, float64(delivered))
			emit("dlc_bus_dropped_total"+labels, float64(dropped))
			emit("dlc_bus_subscribers"+labels, float64(subs))
		}
	})
}

// renderObsSection appends a titled, indented per-stage snapshot to a
// report. Snapshots are already sorted by series name.
func renderObsSection(b *strings.Builder, title string, samples []obs.Sample) {
	if len(samples) == 0 {
		return
	}
	b.WriteString("\n" + title + "\n")
	for _, line := range strings.Split(strings.TrimRight(obs.RenderSamples(samples), "\n"), "\n") {
		b.WriteString("  " + line + "\n")
	}
}
