package harness

import (
	"fmt"
	"strings"

	"darshanldms/internal/analysis"
)

// RenderTableII renders a Table II panel in the paper's layout.
func RenderTableII(title string, cells []*CellResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-28s %14s %12s %14s %14s %12s\n",
		"Configuration", "Avg. Messages", "Rate (m/s)", "Darshan (s)", "dC (s)", "% Overhead")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-28s %14.0f %12.1f %14.2f %14.2f %11.2f%%\n",
			c.Name, c.AvgMessages, c.Rate, c.AvgDarshan, c.AvgDC, c.OverheadPct)
	}
	return b.String()
}

// RenderAblation renders the encoder ablation rows.
func RenderAblation(rows []*AblationResult) string {
	var b strings.Builder
	b.WriteString("Encoder ablation (HMMER): JSON formatting cost isolated\n")
	fmt.Fprintf(&b, "%-8s %-8s %14s %14s %12s\n", "FS", "Encoder", "Darshan (s)", "dC (s)", "% Overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-8s %14.2f %14.2f %11.2f%%\n",
			r.FSKind, r.Encoder, r.AvgDarshan, r.AvgDC, r.OverheadPct)
	}
	return b.String()
}

// RenderSweep renders the sampling sweep.
func RenderSweep(points []*SweepPoint) string {
	var b strings.Builder
	b.WriteString("Sampling sweep (HMMER, sprintf encoder): overhead vs every-Nth-event rate\n")
	fmt.Fprintf(&b, "%-8s %10s %14s %14s %12s %12s %10s\n",
		"FS", "every Nth", "Darshan (s)", "dC (s)", "% Overhead", "messages", "coverage")
	for _, p := range points {
		fmt.Fprintf(&b, "%-8s %10d %14.2f %14.2f %11.2f%% %12.0f %9.1f%%\n",
			p.FSKind, p.SampleEvery, p.AvgDarshan, p.AvgDC, p.OverheadPct, p.Messages, p.Coverage*100)
	}
	return b.String()
}

// RenderFigure5 renders the per-configuration op-count bars with CI error
// bars as text.
func RenderFigure5(data map[string][]analysis.OpCountStat) string {
	var b strings.Builder
	b.WriteString("Figure 5: mean I/O operation occurrences per job (95% CI)\n")
	for _, label := range analysis.SortedKeys(data) {
		fmt.Fprintf(&b, "  %s\n", label)
		for _, s := range data[label] {
			fmt.Fprintf(&b, "    %-6s mean=%10.1f  ±%8.1f   per-job=%v\n", s.Op, s.Mean, s.CI95, fmtFloats(s.PerJob))
		}
	}
	return b.String()
}

// RenderFigure6 renders per-node open/close counts.
func RenderFigure6(rows []analysis.NodeOpCount) string {
	var b strings.Builder
	b.WriteString("Figure 6: I/O requests per node (open/close), HACC-IO Lustre 10M, 2 jobs\n")
	fmt.Fprintf(&b, "  %-12s %6s %-6s %6s\n", "node", "job", "op", "count")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s %6d %-6s %6d\n", r.Node, r.JobID, r.Op, r.Count)
	}
	return b.String()
}

// RenderFigure7 renders mean read/write durations per job, flagging the
// anomalous job.
func RenderFigure7(rows []analysis.JobOpDuration) string {
	var b strings.Builder
	b.WriteString("Figure 7: mean op durations per job (MPI-IO-TEST NFS independent)\n")
	fmt.Fprintf(&b, "  %6s %-6s %12s %8s\n", "job", "op", "mean dur (s)", "ops")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %6d %-6s %12.3f %8d\n", r.JobID, r.Op, r.MeanDur, r.Count)
	}
	return b.String()
}

// RenderFigure8 renders the scatter as a coarse text summary: per decile of
// the run, the median and max write durations plus read activity.
func RenderFigure8(pts []analysis.ScatterPoint) string {
	var b strings.Builder
	b.WriteString("Figure 8: op duration vs absolute time, job_id 2\n")
	if len(pts) == 0 {
		return b.String()
	}
	tMax := pts[len(pts)-1].Time
	const buckets = 10
	type agg struct {
		wN, rN     int
		wMax, rMax float64
		wSum       float64
	}
	aggs := make([]agg, buckets)
	for _, p := range pts {
		idx := int(p.Time / tMax * buckets)
		if idx >= buckets {
			idx = buckets - 1
		}
		a := &aggs[idx]
		if p.Op == "write" {
			a.wN++
			a.wSum += p.Dur
			if p.Dur > a.wMax {
				a.wMax = p.Dur
			}
		} else {
			a.rN++
			if p.Dur > a.rMax {
				a.rMax = p.Dur
			}
		}
	}
	fmt.Fprintf(&b, "  %-14s %8s %12s %12s %8s %12s\n", "window (s)", "writes", "mean w (s)", "max w (s)", "reads", "max r (s)")
	for i, a := range aggs {
		meanW := 0.0
		if a.wN > 0 {
			meanW = a.wSum / float64(a.wN)
		}
		fmt.Fprintf(&b, "  %6.0f-%-7.0f %8d %12.2f %12.2f %8d %12.2f\n",
			float64(i)*tMax/buckets, float64(i+1)*tMax/buckets, a.wN, meanW, a.wMax, a.rN, a.rMax)
	}
	return b.String()
}

// RenderFigure9 renders the aggregated byte timeline with text bars.
func RenderFigure9(bins []analysis.TimelineBin) string {
	var b strings.Builder
	b.WriteString("Figure 9: bytes per window aggregated across ranks, job_id 2\n")
	var max float64
	for _, bin := range bins {
		if bin.WriteBytes > max {
			max = bin.WriteBytes
		}
		if bin.ReadBytes > max {
			max = bin.ReadBytes
		}
	}
	if max == 0 {
		max = 1
	}
	fmt.Fprintf(&b, "  %-14s %12s %12s  %s\n", "window (s)", "write", "read", "profile (W=write R=read)")
	for _, bin := range bins {
		wBar := strings.Repeat("W", int(bin.WriteBytes/max*40))
		rBar := strings.Repeat("R", int(bin.ReadBytes/max*40))
		fmt.Fprintf(&b, "  %6.0f-%-7.0f %12s %12s  %s%s\n",
			bin.Start, bin.End, fmtBytes(bin.WriteBytes), fmtBytes(bin.ReadBytes), wBar, rBar)
	}
	return b.String()
}

func fmtFloats(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%.0f", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	}
	return fmt.Sprintf("%.0fB", v)
}
