package harness

import (
	"strings"
	"testing"

	"darshanldms/internal/simfs"
)

func runCampaign(t *testing.T) *FaultCampaignResult {
	t.Helper()
	c, err := FaultCampaign(2022, 0.02, 5_000_000, simfs.Lustre)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFaultCampaign(t *testing.T) {
	c := runCampaign(t)

	if c.Baseline.Published == 0 {
		t.Fatal("baseline published nothing")
	}
	if c.Baseline.Dropped != 0 || c.Baseline.Delivered != c.Baseline.Published {
		t.Fatalf("baseline lost data: published %d delivered %d dropped %d",
			c.Baseline.Published, c.Baseline.Delivered, c.Baseline.Dropped)
	}

	byName := map[string]FaultRunResult{}
	for _, r := range c.Runs {
		byName[r.Profile] = r
	}
	for _, want := range []string{"daemon-crash", "link-partition", "slow-subscriber"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("campaign missing required profile %q (have %v)", want, profileNames(c))
		}
	}
	if len(c.Runs) < 3 {
		t.Fatalf("campaign ran %d profiles, want >= 3", len(c.Runs))
	}

	// Each fault leaves its signature in the counters.
	if r := byName["daemon-crash"]; r.Dropped == 0 {
		t.Fatal("daemon crash dropped nothing")
	}
	if r := byName["link-partition"]; r.Dropped == 0 {
		t.Fatal("link partition dropped nothing")
	}
	if r := byName["slow-subscriber"]; r.Recovered == 0 {
		t.Fatal("slow subscriber recovered nothing (stall buffer never released)")
	}
	if r, ok := byName["flaky-store"]; ok {
		if r.StoreRetries == 0 {
			t.Fatal("flaky store never exercised the retry layer")
		}
		// Retries absorb most injected failures: the store loses far less
		// than it retried.
		if r.StoreDrops >= r.StoreRetries {
			t.Fatalf("store drops %d >= retries %d; retry layer ineffective", r.StoreDrops, r.StoreRetries)
		}
	}
	if r, ok := byName["replay-outage"]; ok {
		if r.Duplicated == 0 {
			t.Fatal("replay outage re-delivered no tail frames")
		}
		if r.Deduped != r.Duplicated {
			t.Fatalf("dedup absorbed %d of %d re-delivered frames", r.Deduped, r.Duplicated)
		}
		if r.Recovered == 0 {
			t.Fatal("replay outage recovered nothing from its spool")
		}
		// Exactly-once accounting balances: every published message is
		// either delivered once or dropped, never double counted.
		if r.Delivered+r.Dropped != r.Published {
			t.Fatalf("accounting broken: delivered %d + dropped %d != published %d",
				r.Delivered, r.Dropped, r.Published)
		}
	} else {
		t.Fatalf("campaign missing replay-outage profile (have %v)", profileNames(c))
	}
	for _, r := range c.Runs {
		if len(r.Log) == 0 {
			t.Fatalf("profile %s produced no fault log", r.Profile)
		}
	}

	out := RenderFaultCampaign(c)
	for _, want := range []string{"Fault campaign", "profile", "daemon-crash", "fault log"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered campaign missing %q:\n%s", want, out)
		}
	}
}

func TestFaultCampaignDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full campaigns")
	}
	a := RenderFaultCampaign(runCampaign(t))
	b := RenderFaultCampaign(runCampaign(t))
	if a != b {
		t.Fatalf("same seed produced different campaigns:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

func profileNames(c *FaultCampaignResult) []string {
	var names []string
	for _, r := range c.Runs {
		names = append(names, r.Profile)
	}
	return names
}
