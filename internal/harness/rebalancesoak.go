package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"darshanldms/internal/event"
	"darshanldms/internal/faults"
	"darshanldms/internal/jsonmsg"
	"darshanldms/internal/ldms"
	"darshanldms/internal/obs"
	"darshanldms/internal/rng"
	"darshanldms/internal/sim"
	"darshanldms/internal/sos"
	"darshanldms/internal/streams"
	"darshanldms/internal/topo"

	"darshanldms/internal/dsos"
)

// The rebalance soak is the control plane's acceptance harness: a
// three-level aggregation tree (leaves -> L1 -> L2 -> store head) built
// from durable streams and topo uplinks, feeding a consistent-hash shard
// cluster, rerun under many seeded schedules that crash aggregators,
// partition uplinks, crash shards AND trigger a live grow + shrink
// rebalance mid-soak. After every run four invariants are audited:
//
//  1. No acked record lost — every object the store chain acked is in
//     the final merged query.
//  2. No (producer, seq) stored twice — the merged view never exceeds
//     the acked multiset, and no shard holds an origin twice.
//  3. Exactly one post-cutover owner — every stored origin lives on
//     exactly its ring owners (topo.HashCluster.AuditPlacement).
//  4. Re-homing never regresses an ack floor — every uplink's durable
//     cursor is monotone across every failover.
//
// The static-placement baseline (Static: true) runs the same tree and
// faults but cannot rebalance: a grow is impossible and a shrink is an
// operator decommission — the shard is killed and never restarted. The
// soak then demonstrates the acked data that placement loses.

// RebalanceSoakConfig parameterizes a rebalance soak.
type RebalanceSoakConfig struct {
	Seed              uint64
	Schedules         int           // randomized fault schedules (default 20)
	EventsPerSchedule int           // random fault draws per schedule (default 5)
	Leaves            int           // leaf daemons (default 8)
	MsgsPerLeaf       int           // records produced per leaf (default 120)
	Horizon           time.Duration // virtual soak length (default 4s)
	Shards            int           // initial dsosd shard count (default 3)
	Static            bool          // static placement baseline (no rebalancing)
}

// DefaultRebalanceSoakConfig is the durable full-size soak: 20 schedules
// against the 3-level tree with a 3-shard (+1 spare) hash cluster.
func DefaultRebalanceSoakConfig(seed uint64) RebalanceSoakConfig {
	return RebalanceSoakConfig{
		Seed: seed, Schedules: 20, EventsPerSchedule: 5,
		Leaves: 8, MsgsPerLeaf: 120, Horizon: 4 * time.Second, Shards: 3,
	}
}

// RebalanceRunResult reports one soak run and its invariant audit.
type RebalanceRunResult struct {
	Schedule     string
	Produced     uint64 // records appended to leaf streams
	Acked        uint64 // identities acked durable by the store chain
	Deduped      uint64 // replayed deliveries absorbed by dedup
	Naks         uint64 // store-pump naks (down-shard backpressure)
	AckLost      uint64 // uplink acks lost to crashes inside the ack gap
	Rehomes      uint64 // tree failovers
	Misses       uint64 // heartbeat misses
	Migrations   uint64 // completed cutovers
	Aborts       uint64
	Moved        uint64 // objects copied by handoff replays
	FencedWrites uint64
	MidChecks    int // mid-soak readability probes that ran
	Merged       int // objects in the final merged query
	Notes        []string
	Violations   []string
	Log          []faults.Record
	Obs          []obs.Sample
}

// RebalanceSoakResult is a full soak: the calm run (rebalance, no
// faults) plus one run per schedule.
type RebalanceSoakResult struct {
	Label      string
	Config     RebalanceSoakConfig
	Calm       RebalanceRunResult
	Runs       []RebalanceRunResult
	Violations int
}

// rebalanceTopo is one assembled soak topology.
type rebalanceTopo struct {
	e       *sim.Engine
	tree    *topo.Tree
	uplinks map[string]*topo.Uplink
	hc      *topo.HashCluster
	pump    *topo.StorePump
	dedup   *ldms.DedupStore
	ack     *ackRecorder
	hstore  *topo.HashStore
	decomm  map[string]bool // baseline decommissioned shards
	notes   []string
}

const (
	rebalanceSpare  = "dsosd-spare"
	rebalanceVictim = "dsosd2"
)

// rebalanceShardFactory builds one dsosd shard with the darshan schema,
// its indices and a fresh in-memory WAL.
func rebalanceShardFactory(name string) (*dsos.Daemon, error) {
	d := dsos.NewDaemon(name, "rebalance-darshan")
	d.EnableWAL(sos.NewMemWAL())
	if err := d.AddSchema(dsos.DarshanSchema()); err != nil {
		return nil, err
	}
	for _, spec := range dsos.DarshanIndices() {
		if err := d.AddIndex(spec); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// rebalanceSchedule draws one seeded fault schedule over the horizon:
// exactly one grow window and one (later, disjoint) shrink window, plus
// n random events — aggregator crashes, uplink partitions and shard
// crashes — all confined to [0.1h, 0.9h] so the quiesce at 1.0h always
// finds the scripted faults over.
func rebalanceSchedule(r *rng.Stream, name string, h time.Duration, aggs, parts, shards []string, n int) faults.Profile {
	p := faults.Profile{Name: name}
	hf := float64(h)
	at := func(lo, hi float64) time.Duration { return time.Duration(r.Uniform(lo, hi) * hf) }
	p.Events = append(p.Events, faults.Event{
		Kind: faults.StoreFault, Target: "grow",
		At: at(0.20, 0.38), Duration: time.Duration(0.08 * hf),
	})
	p.Events = append(p.Events, faults.Event{
		Kind: faults.StoreFault, Target: "shrink",
		At: at(0.55, 0.70), Duration: time.Duration(0.08 * hf),
	})
	for i := 0; i < n; i++ {
		start := at(0.10, 0.75)
		dur := time.Duration(r.Uniform(0.05, 0.12) * hf)
		switch r.Intn(3) {
		case 0:
			p.Events = append(p.Events, faults.Event{
				Kind: faults.DaemonCrash, Target: aggs[r.Intn(len(aggs))], At: start, Duration: dur,
			})
		case 1:
			p.Events = append(p.Events, faults.Event{
				Kind: faults.StoreFault, Target: "part-" + parts[r.Intn(len(parts))], At: start, Duration: dur,
			})
		case 2:
			p.Events = append(p.Events, faults.Event{
				Kind: faults.DaemonCrash, Target: shards[r.Intn(len(shards))], At: start,
				Duration: time.Duration(r.Uniform(0.04, 0.08) * hf),
			})
		}
	}
	sort.Slice(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p
}

// runRebalanceSoak executes one soak run. mkProfile nil = the calm run
// (grow + shrink on fixed times, no faults).
func runRebalanceSoak(cfg RebalanceSoakConfig, name string, mkProfile func(aggs, parts, shards []string) faults.Profile) (*RebalanceRunResult, error) {
	e := sim.NewEngine()
	defer e.Close()
	root := rng.New(cfg.Seed)
	h := cfg.Horizon

	rt := &rebalanceTopo{
		e:       e,
		tree:    topo.NewTree(e.Now, topo.DefaultFailAfter),
		uplinks: map[string]*topo.Uplink{},
		decomm:  map[string]bool{},
	}

	// --- Shard plane: a consistent-hash dsos cluster. ---
	shardNames := make([]string, 0, cfg.Shards)
	var shards []*dsos.Daemon
	for i := 0; i < cfg.Shards; i++ {
		sn := fmt.Sprintf("dsosd%d", i)
		d, err := rebalanceShardFactory(sn)
		if err != nil {
			return nil, err
		}
		shards = append(shards, d)
		shardNames = append(shardNames, sn)
	}
	hc, err := topo.NewHashCluster(topo.HashConfig{
		Seed:    cfg.Seed ^ 0x5eed,
		Index:   "job_rank_time",
		Factory: rebalanceShardFactory,
		Clock:   e.Now,
	}, shards)
	if err != nil {
		return nil, err
	}
	rt.hc = hc

	// --- Aggregation tree: leaves -> L1 (a,b; standby s) -> L2 (c;
	// standby d) -> store head. Every non-root member owns a durable
	// stream teed off its bus and an uplink pumping it to the tree's
	// current routing decision. ---
	type agg struct{ name, parent, standby string }
	aggSpecs := []agg{
		{"store-head", "", ""},
		{"agg-d", "store-head", ""},
		{"agg-c", "store-head", "agg-d"},
		{"agg-s", "agg-c", "agg-d"},
		{"agg-a", "agg-c", "agg-s"},
		{"agg-b", "agg-c", "agg-s"},
	}
	buses := map[string]*streams.Bus{}
	streamsByName := map[string]*streams.DurableStream{}
	mkMember := func(name, parent, standby string, role topo.Role) error {
		bus := streams.NewBus()
		buses[name] = bus
		if err := rt.tree.Add(topo.Spec{Name: name, Role: role, Parent: parent, Standby: standby, Bus: bus}); err != nil {
			return err
		}
		s, err := streams.OpenStream(streams.StreamConfig{Name: name, Clock: e.Now}, sos.NewMemWAL())
		if err != nil {
			return err
		}
		if err := bus.BindStream(s); err != nil {
			return err
		}
		streamsByName[name] = s
		return nil
	}
	for _, a := range aggSpecs {
		role := topo.RoleAgg
		if a.parent == "" {
			role = topo.RoleRoot
		}
		if err := mkMember(a.name, a.parent, a.standby, role); err != nil {
			return nil, err
		}
	}
	leafNames := make([]string, 0, cfg.Leaves)
	for i := 0; i < cfg.Leaves; i++ {
		ln := fmt.Sprintf("leaf-%02d", i)
		parent, standby := "agg-a", "agg-b"
		if i >= cfg.Leaves/2 {
			parent, standby = "agg-b", "agg-a"
		}
		if err := mkMember(ln, parent, standby, topo.RoleLeaf); err != nil {
			return nil, err
		}
		leafNames = append(leafNames, ln)
	}
	// Uplinks for every non-root member.
	for _, name := range rt.tree.Members() {
		if name == "store-head" {
			continue
		}
		u, err := topo.StartUplink(e, rt.tree, name, streamsByName[name], topo.PumpConfig{})
		if err != nil {
			return nil, err
		}
		rt.uplinks[name] = u
	}

	// --- Store chain on the head: dedup -> ack witness -> hash store. ---
	rt.hstore = topo.NewHashStore(hc)
	rt.ack = newAckRecorder(rt.hstore)
	rt.dedup = ldms.NewDedupStore(rt.ack)
	pump, err := topo.StartStorePump(e, streamsByName["store-head"], rt.dedup, topo.PumpConfig{})
	if err != nil {
		return nil, err
	}
	rt.pump = pump

	// --- Fault wiring. ---
	ctl := faults.NewController(e)
	aggNames := []string{"agg-a", "agg-b", "agg-s", "agg-c", "agg-d"}
	for _, an := range aggNames {
		an := an
		ctl.RegisterCrash(an, func() { rt.tree.Crash(an) }, func() {
			rt.tree.Restart(an)
			rt.uplinks[an].Redeliver()
		})
	}
	partTargets := []string{"agg-a", "agg-b", "leaf-00", leafNames[cfg.Leaves/2]}
	for _, pn := range partTargets {
		pn := pn
		ctl.RegisterToggle("part-"+pn, func(on bool) { rt.tree.SetPartition(pn, on) })
	}
	for _, d := range shards {
		d := d
		ctl.RegisterCrash(d.Name, d.Crash, func() {
			if rt.decomm[d.Name] {
				return // baseline decommission is permanent
			}
			if err := d.Restart(); err != nil {
				rt.notes = append(rt.notes, fmt.Sprintf("restart %s: %v", d.Name, err))
			}
		})
	}
	// Rebalance windows: toggle on = begin, toggle off = cutover. In the
	// static baseline a grow is impossible and a shrink is a decommission
	// — the victim shard dies with its data still placed on it.
	note := func(format string, args ...any) {
		rt.notes = append(rt.notes, fmt.Sprintf("[%8.3fs] %s", e.Now().Seconds(), fmt.Sprintf(format, args...)))
	}
	ctl.RegisterToggle("grow", func(on bool) {
		if cfg.Static {
			if on {
				note("grow: static placement cannot add a shard")
			}
			return
		}
		if on {
			if err := hc.BeginAdd(rebalanceSpare); err != nil {
				note("grow begin: %v", err)
			}
			return
		}
		if !hc.Migrating() {
			return
		}
		if err := hc.Cutover(); err != nil {
			note("grow cutover deferred: %v", err)
		}
	})
	ctl.RegisterToggle("shrink", func(on bool) {
		if cfg.Static {
			if on {
				note("shrink: static placement decommissions %s, stranding its keys", rebalanceVictim)
				rt.decomm[rebalanceVictim] = true
				hc.Daemon(rebalanceVictim).Crash()
			}
			return
		}
		if on {
			if err := hc.BeginRemove(rebalanceVictim); err != nil {
				note("shrink begin: %v", err)
			}
			return
		}
		if !hc.Migrating() {
			return
		}
		if err := hc.Cutover(); err != nil {
			note("shrink cutover deferred: %v", err)
		}
	})

	// --- Telemetry. ---
	reg := obs.NewRegistry()
	rt.tree.Collect(reg)
	hc.Collect(reg)
	rt.dedup.Instrument(reg, obs.Clock(e.Now))
	for _, ln := range leafNames {
		rt.uplinks[ln].Collect(reg)
	}

	// --- Workload: each leaf appends typed connector records with a
	// unique (producer, seq) identity to its own durable stream. ---
	produceFor := time.Duration(0.7 * float64(h))
	interval := produceFor / time.Duration(cfg.MsgsPerLeaf)
	var produced uint64
	for li, ln := range leafNames {
		li, ln := li, ln
		jit := root.DeriveN("rebalance-producer", li)
		e.Spawn("produce-"+ln, func(p *sim.Proc) {
			for i := 0; i < cfg.MsgsPerLeaf; i++ {
				p.Sleep(interval + time.Duration(jit.Intn(int(interval/4)+1)))
				msg := &jsonmsg.Message{
					UID: 99066, Exe: "/projects/hacc/hacc-io",
					JobID: int64(1 + i/50), Rank: li*1000 + i%8,
					ProducerName: ln, File: "/scratch/hacc", RecordID: uint64(i),
					Module: "POSIX", Type: jsonmsg.TypeMOD, Op: "write",
					MaxByte: -1, Cnt: 1,
					Seg: []jsonmsg.Segment{{
						DataSet: jsonmsg.NA, PtSel: -1, IrregHSlab: -1, RegHSlab: -1,
						NDims: -1, NPoints: -1, Off: int64(i) * 4096, Len: 4096,
						Dur: 0.01, Timestamp: float64(li*1_000_000 + i),
					}},
				}
				_, err := streamsByName[ln].Append(streams.Message{
					Tag:      "darshanConnector",
					Record:   event.NewRecord(msg, nil),
					Producer: ln,
					Seq:      uint64(i + 1),
				})
				if err != nil {
					panic(err)
				}
				produced++
			}
		})
	}

	// --- Fault schedule. ---
	profile := faults.Profile{Name: name}
	if mkProfile != nil {
		profile = mkProfile(aggNames, partTargets, shardNames)
	} else {
		// Calm run: the rebalance happens, nothing else goes wrong.
		profile.Events = []faults.Event{
			{Kind: faults.StoreFault, Target: "grow", At: time.Duration(0.30 * float64(h)), Duration: time.Duration(0.08 * float64(h))},
			{Kind: faults.StoreFault, Target: "shrink", At: time.Duration(0.60 * float64(h)), Duration: time.Duration(0.08 * float64(h))},
		}
	}
	if err := ctl.Apply(profile); err != nil {
		return nil, err
	}

	// --- Mid-soak readability probes: while faults and migrations are
	// live, everything already acked must still be readable whenever no
	// placement group is dark. Snapshot and query run in one engine
	// callback, so the check is atomic in virtual time. ---
	res := &RebalanceRunResult{Schedule: profile.Name}
	probeRng := root.Derive("rebalance-probe")
	for i := 0; i < 3; i++ {
		at := time.Duration(probeRng.Uniform(0.30, 0.72) * float64(h))
		e.At(at, func() {
			_, ackedSet := rt.ack.snapshot()
			objs, info, err := hc.Query("job_rank_time", nil, nil)
			if err != nil || info.Partial {
				return // a dark group is a liveness gap, not a safety bug
			}
			res.MidChecks++
			got := map[string]int{}
			for _, o := range objs {
				got[chaosObjKey(o)]++
			}
			missing := 0
			for k, n := range ackedSet {
				if got[k] < n {
					missing += n - got[k]
				}
			}
			if missing > 0 {
				res.Violations = append(res.Violations, fmt.Sprintf(
					"mid-soak-unreadable: %d acked objects invisible at %.3fs with all groups up", missing, e.Now().Seconds()))
			}
		})
	}

	// --- Quiesce: restore the fleet, finish any staged migration, then
	// let the pumps drain every backlog. ---
	e.At(h, func() {
		for _, an := range aggNames {
			rt.tree.Restart(an)
			rt.uplinks[an].Redeliver()
		}
		for _, ln := range leafNames {
			rt.tree.SetPartition(ln, false)
			rt.uplinks[ln].Redeliver()
		}
		for _, pn := range partTargets {
			rt.tree.SetPartition(pn, false)
		}
		for _, sn := range hc.Members() {
			if rt.decomm[sn] {
				continue
			}
			d := hc.Daemon(sn)
			if d != nil && !d.Up() {
				if err := d.Restart(); err != nil {
					rt.notes = append(rt.notes, fmt.Sprintf("quiesce restart %s: %v", sn, err))
				}
			}
		}
	})
	e.At(h+h/20, func() {
		if hc.Migrating() {
			if err := hc.Cutover(); err != nil {
				note("final cutover failed (%v); aborting migration", err)
				if err := hc.Abort(); err != nil {
					note("final abort: %v", err)
				}
			}
		}
		if err := hc.Settle(); err != nil {
			note("settle: %v", err)
		}
	})

	if err := e.Run(0); err != nil {
		return nil, err
	}
	if err := e.Drain(h + h/2); err != nil {
		return nil, err
	}

	// --- Final merged view and invariant audit. ---
	merged, _, err := hc.Query("job_rank_time", nil, nil)
	if err != nil {
		return nil, err
	}
	mergedSet := map[string]int{}
	for _, o := range merged {
		mergedSet[chaosObjKey(o)]++
	}
	acked, ackedSet := rt.ack.snapshot()

	res.Produced = produced
	res.Acked = acked
	res.Deduped = rt.dedup.Duplicates()
	res.Rehomes = rt.tree.Rehomes()
	res.Misses = rt.tree.Misses()
	res.Merged = len(merged)
	res.Notes = rt.notes
	res.Log = ctl.Log()
	st := hc.Stats()
	res.Migrations, res.Aborts, res.Moved, res.FencedWrites = st.Migrations, st.Aborts, st.Moved, st.FencedWrites
	_, naks, _ := rt.pump.Stats()
	res.Naks = naks
	for _, u := range rt.uplinks {
		res.AckLost += u.State().AckLost
	}

	// 1. No acked record lost.
	missing := 0
	for k, n := range ackedSet {
		if mergedSet[k] < n {
			missing += n - mergedSet[k]
		}
	}
	if missing > 0 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("acked-but-lost: %d acked objects missing from the merged view", missing))
	}

	// 2. No (producer, seq) stored twice: below dedup each identity is
	// acked at most once, so the merged view must never exceed it.
	extra := 0
	for k, n := range mergedSet {
		if n > ackedSet[k] {
			extra += n - ackedSet[k]
		}
	}
	if extra > 0 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("duplicate-stored: %d objects beyond the acked multiset", extra))
	}

	// 3. Exactly one post-cutover owner per key (and no shard holding an
	// origin twice — the placement half of invariant 2).
	if violations, err := hc.AuditPlacement(); err != nil {
		res.Violations = append(res.Violations, fmt.Sprintf("placement-audit-error: %v", err))
	} else {
		for _, v := range violations {
			res.Violations = append(res.Violations, "placement: "+v)
		}
	}

	// 4. Re-homing never regresses a consumer ack floor.
	for _, child := range rt.tree.Members() {
		u := rt.uplinks[child]
		if u == nil {
			continue
		}
		if regressions := u.State().FloorRegressions; regressions > 0 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("ack-floor-regression: uplink %s regressed %d times", child, regressions))
		}
	}

	res.Obs = reg.Snapshot()
	return res, nil
}

// RebalanceSoak runs the calm rebalance plus every seeded fault
// schedule. Everything derives from cfg.Seed, so a soak replays
// bit-for-bit.
func RebalanceSoak(cfg RebalanceSoakConfig) (*RebalanceSoakResult, error) {
	if cfg.Schedules <= 0 {
		cfg.Schedules = 20
	}
	if cfg.EventsPerSchedule <= 0 {
		cfg.EventsPerSchedule = 5
	}
	if cfg.Leaves <= 0 {
		cfg.Leaves = 8
	}
	if cfg.MsgsPerLeaf <= 0 {
		cfg.MsgsPerLeaf = 120
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 4 * time.Second
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	placement := "hash ring + live rebalance"
	if cfg.Static {
		placement = "static placement (baseline)"
	}
	out := &RebalanceSoakResult{
		Label: fmt.Sprintf("%d leaves -> L1 -> L2 -> %d shards, %s",
			cfg.Leaves, cfg.Shards, placement),
		Config: cfg,
	}
	calm, err := runRebalanceSoak(cfg, "calm", nil)
	if err != nil {
		return nil, err
	}
	out.Calm = *calm
	out.Violations += len(calm.Violations)
	scheduleRoot := rng.New(cfg.Seed)
	for i := 0; i < cfg.Schedules; i++ {
		r := scheduleRoot.DeriveN("rebalance-schedule", i)
		name := fmt.Sprintf("rebal-%02d", i)
		mk := func(aggs, parts, shards []string) faults.Profile {
			return rebalanceSchedule(r, name, cfg.Horizon, aggs, parts, shards, cfg.EventsPerSchedule)
		}
		res, err := runRebalanceSoak(cfg, name, mk)
		if err != nil {
			return nil, err
		}
		out.Runs = append(out.Runs, *res)
		out.Violations += len(res.Violations)
	}
	return out, nil
}

// RenderRebalanceSoak formats the soak as a per-schedule accounting
// table plus every violation (with notes and the fault log of violating
// runs) and the calm run's control-plane telemetry snapshot.
func RenderRebalanceSoak(c *RebalanceSoakResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rebalance soak: %s (seed %d, %d schedules, horizon %.3fs)\n",
		c.Label, c.Config.Seed, len(c.Runs), c.Config.Horizon.Seconds())
	fmt.Fprintf(&b, "%-10s %9s %7s %7s %6s %8s %7s %7s %6s %6s %7s %7s %s\n",
		"schedule", "produced", "acked", "dedup", "naks", "acklost", "rehome", "miss", "migr", "moved", "fenced", "merged", "invariants")
	row := func(r RebalanceRunResult) {
		verdict := "ok"
		if len(r.Violations) > 0 {
			verdict = fmt.Sprintf("VIOLATED (%d)", len(r.Violations))
		}
		fmt.Fprintf(&b, "%-10s %9d %7d %7d %6d %8d %7d %7d %6d %6d %7d %7d %s\n",
			r.Schedule, r.Produced, r.Acked, r.Deduped, r.Naks, r.AckLost, r.Rehomes,
			r.Misses, r.Migrations, r.Moved, r.FencedWrites, r.Merged, verdict)
	}
	row(c.Calm)
	for _, r := range c.Runs {
		row(r)
	}
	fmt.Fprintf(&b, "total invariant violations: %d\n", c.Violations)
	for _, r := range c.Runs {
		if len(r.Violations) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n%s violations:\n", r.Schedule)
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "  note: %s\n", n)
		}
		for _, rec := range r.Log {
			fmt.Fprintf(&b, "  %s\n", rec)
		}
	}
	renderObsSection(&b, "control plane snapshot (calm run):", c.Calm.Obs)
	return b.String()
}
