package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"darshanldms/internal/apps"
	"darshanldms/internal/cluster"
	"darshanldms/internal/connector"
	"darshanldms/internal/darshan"
	"darshanldms/internal/dsos"
	"darshanldms/internal/event"
	"darshanldms/internal/faults"
	"darshanldms/internal/jsonmsg"
	"darshanldms/internal/ldms"
	"darshanldms/internal/obs"
	"darshanldms/internal/rng"
	"darshanldms/internal/sim"
	"darshanldms/internal/simfs"
	"darshanldms/internal/sos"
	"darshanldms/internal/streams"
)

// The chaos soak is the durability layer's acceptance harness: it reruns
// the HACC-IO pipeline under many randomized (but seeded, so reproducible)
// fault schedules and audits Jepsen-style invariants after every run:
//
//  1. No acked event lost — every object whose store ack reached the
//     transport is present in the final merged query.
//  2. No duplicate stored — the merged view never holds more copies of an
//     object than the fault-free oracle run produced.
//  3. Replicas converge — after recovery and read repair every origin id
//     is present on at least R daemons, and a second query repairs nothing.
//  4. Oracle equality — a run that recorded no losses anywhere reproduces
//     the fault-free oracle's merged view exactly.
//
// With the durable configuration (write-ahead logs + R=2) all four hold
// under every schedule; with the legacy configuration (R=1, no WAL) the
// soak demonstrates the losses and duplicates the paper's best-effort
// stream stack is exposed to.

// ChaosSoakConfig parameterizes a soak.
type ChaosSoakConfig struct {
	Seed              uint64
	Schedules         int     // randomized fault schedules to run (default 20)
	EventsPerSchedule int     // link/store fault draws per schedule (default 6)
	Scale             float64 // workload scale factor (default 1)
	ParticlesPerRank  int64   // HACC-IO size before scaling (default 5M)
	FSKind            simfs.Kind
	Daemons           int  // dsosd count (default 4)
	Replication       int  // DSOS replication factor (default 2)
	WAL               bool // per-daemon write-ahead logs
}

// DefaultChaosSoakConfig is the durable full-size soak: 20 schedules
// against a 4-daemon R=2 cluster with write-ahead logs.
func DefaultChaosSoakConfig(seed uint64) ChaosSoakConfig {
	return ChaosSoakConfig{
		Seed: seed, Schedules: 20, EventsPerSchedule: 6,
		Scale: 0.02, ParticlesPerRank: 5_000_000, FSKind: simfs.Lustre,
		Daemons: 4, Replication: 2, WAL: true,
	}
}

// ChaosRunResult reports one soak run and its invariant audit.
type ChaosRunResult struct {
	Schedule       string
	Runtime        time.Duration
	Published      uint64 // connector messages published on node buses
	Acked          uint64 // message identities acked durable by the store chain
	Deduped        uint64 // replayed deliveries suppressed by the dedup layer
	LinkDropped    uint64 // lost on partitioned links or overflowed buffers
	LinkRecovered  uint64 // held during stalls/outages, delivered after
	LinkDuplicated uint64 // tail re-deliveries from replay-outage heals
	StoreRetries   uint64 // ingest retry attempts
	StoreDrops     uint64 // messages lost at the store after retries
	WALRecovered   uint64 // WAL records replayed across daemon restarts
	Repaired       int    // replica copies written by read repair
	Merged         int    // objects in the final merged query
	Violations     []string
	Log            []faults.Record
	Obs            []obs.Sample // per-stage telemetry snapshot, taken post-audit
}

// ChaosSoakResult is a full soak: the fault-free oracle plus one run per
// schedule.
type ChaosSoakResult struct {
	Label      string
	Config     ChaosSoakConfig
	Oracle     ChaosRunResult
	Runs       []ChaosRunResult
	Violations int // total across all runs
}

// chaosReplayTail is the at-least-once tail every link retains for
// replay-outage heals — duplicates for the dedup layer to absorb.
const chaosReplayTail = 32

// chaosObjKey is the multiset identity of one stored object.
func chaosObjKey(o sos.Object) string { return fmt.Sprintf("%v", []any(o)) }

// ackRecorder sits between the dedup layer and the retry/store chain: on
// inner success it records the objects the caller was just promised are
// durable — the "acked" side of the no-acked-event-lost invariant. Below
// the dedup layer it sees each stored identity exactly once.
type ackRecorder struct {
	inner ldms.StorePlugin
	mu    sync.Mutex
	acked uint64
	objs  map[string]int
}

func newAckRecorder(inner ldms.StorePlugin) *ackRecorder {
	return &ackRecorder{inner: inner, objs: map[string]int{}}
}

// Name implements ldms.StorePlugin.
func (a *ackRecorder) Name() string { return "acktrack(" + a.inner.Name() + ")" }

// Store implements ldms.StorePlugin.
func (a *ackRecorder) Store(m streams.Message) error {
	if err := a.inner.Store(m); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.acked++
	if msg, err := event.Fields(m); err == nil {
		for _, o := range dsos.ObjectsFromMessage(msg) {
			a.objs[chaosObjKey(o)]++
		}
	}
	return nil
}

func (a *ackRecorder) snapshot() (uint64, map[string]int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int, len(a.objs))
	for k, n := range a.objs {
		out[k] = n
	}
	return a.acked, out
}

// soakSchedule draws one randomized fault schedule. Link and store faults
// are drawn freely over the first 80% of the horizon, overlaps welcome;
// daemon crashes are confined to disjoint per-target time slots so at most
// one replica of any placement group is down at a time — the single-failure
// regime an R-replica cluster is sized for. (Crashing a whole placement
// group at once makes inserts fail outright; that tests admission, not
// durability of acked data.)
func soakSchedule(r *rng.Stream, name string, horizon time.Duration, links, crashes []string, n int) faults.Profile {
	p := faults.Profile{Name: name}
	h := float64(horizon)
	for i := 0; i < n; i++ {
		at := time.Duration(r.Float64() * 0.8 * h)
		dur := time.Duration(r.Uniform(0.05, 0.15) * h)
		link := links[r.Intn(len(links))]
		switch r.Intn(5) {
		case 0:
			p.Events = append(p.Events, faults.Event{Kind: faults.LinkPartition, Target: link, At: at, Duration: dur})
		case 1:
			p.Events = append(p.Events, faults.Event{
				Kind: faults.LatencySpike, Target: link, At: at, Duration: dur,
				Extra: time.Duration(r.Uniform(1, 20)) * time.Millisecond,
			})
		case 2:
			p.Events = append(p.Events, faults.Event{Kind: faults.SlowSubscriber, Target: link, At: at, Duration: dur})
		case 3:
			p.Events = append(p.Events, faults.Event{Kind: faults.ReplayOutage, Target: link, At: at, Duration: dur})
		case 4:
			p.Events = append(p.Events, faults.Event{Kind: faults.StoreFault, Target: "store", At: at, Duration: dur})
		}
	}
	slot := h / float64(len(crashes)+1)
	for i, target := range crashes {
		if !r.Bool(0.6) {
			continue
		}
		at := time.Duration(float64(i)*slot + r.Float64()*0.4*slot)
		dur := time.Duration(r.Uniform(0.2, 0.5) * slot)
		p.Events = append(p.Events, faults.Event{Kind: faults.DaemonCrash, Target: target, At: at, Duration: dur})
	}
	sort.Slice(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p
}

// runChaosSoak executes one HACC-IO run against the durable DSOS pipeline.
// mkProfile (nil for the fault-free oracle) receives the registered link
// and crash-target names once the topology exists. oracle is the fault-free
// merged multiset (nil when this run IS the oracle); the merged multiset of
// this run is returned for that purpose.
func runChaosSoak(cfg ChaosSoakConfig, name string, mkProfile func(links, crashes []string) faults.Profile, horizon time.Duration, oracle map[string]int) (*ChaosRunResult, map[string]int, error) {
	e := sim.NewEngine()
	defer e.Close()
	m := cluster.New(e, cluster.Voltrino())
	root := rng.New(cfg.Seed)

	var fscfg simfs.Config
	if cfg.FSKind == simfs.Lustre {
		fscfg = simfs.DefaultLustre()
	} else {
		fscfg = simfs.DefaultNFS()
	}
	fscfg.Load = simfs.NominalLoad()
	fs := simfs.New(e, fscfg, root.Derive("fs"))

	rt := darshan.NewRuntime(darshan.Config{
		JobID: 1, UID: 99066, Exe: "/projects/hacc/hacc-io", DXT: true,
	}, 0)

	// Same fault-injectable topology as the campaign, with every link
	// retaining an at-least-once replay tail.
	ctl := faults.NewController(e)
	head := ldms.NewAggregator("agg-head", m.Head().Name)
	remote := ldms.NewAggregator("agg-remote", "shirley")
	uplink := faults.NewLink(e, head.Daemon, remote.Daemon, connector.DefaultTag, 300*time.Microsecond)
	uplink.SetReplayTail(chaosReplayTail)
	ctl.RegisterLink("uplink", uplink)
	allLinks := []*faults.Link{uplink}
	linkNames := []string{"uplink"}
	nodeDaemons := map[string]*ldms.Daemon{}
	for _, n := range m.Nodes() {
		d := ldms.NewDaemon("ldmsd-"+n.Name, n.Name)
		d.AddSampler(ldms.NewMeminfoSampler(64<<20, root.DeriveN("meminfo", n.Index)))
		nodeDaemons[n.Name] = d
		l := faults.NewLink(e, d, head.Daemon, connector.DefaultTag, 150*time.Microsecond)
		l.SetReplayTail(chaosReplayTail)
		ln := "node-" + n.Name
		ctl.RegisterLink(ln, l)
		allLinks = append(allLinks, l)
		linkNames = append(linkNames, ln)
		head.AddProducer(d)
	}
	crash, restart := faults.CrashDaemon(allLinks...)
	ctl.RegisterCrash("agg-head", crash, restart)

	// Storage: a DSOS cluster with the configured durability knobs. Every
	// dsosd is a crash target; its restart hook replays the WAL (if any).
	sc := dsos.NewCluster(cfg.Daemons, "chaos-darshan")
	if err := dsos.SetupDarshan(sc); err != nil {
		return nil, nil, err
	}
	sc.SetReplication(cfg.Replication)
	if cfg.WAL {
		sc.EnableWAL(nil)
	}
	crashNames := []string{}
	for _, d := range sc.Daemons() {
		d := d
		ctl.RegisterCrash(d.Name, d.Crash, func() { _ = d.Restart() })
		crashNames = append(crashNames, d.Name)
	}
	crashNames = append(crashNames, "agg-head")
	client := dsos.Connect(sc)

	// Store chain, outermost first: dedup absorbs replayed deliveries, the
	// ack recorder witnesses what was promised durable, retry rides out
	// transient store faults, flaky injects them, DSOS stores.
	dstore := ldms.NewDSOSStore(client)
	flaky := faults.NewFlakyStore(dstore, root.Derive("storefault"), storeFailProb)
	retry := ldms.NewRetryStore(flaky, ldms.RetryConfig{Attempts: 4})
	ack := newAckRecorder(retry)
	dedup := ldms.NewDedupStore(ack)
	handle := remote.AttachStore(connector.DefaultTag, dedup)
	ctl.RegisterToggle("store", flaky.SetActive)

	conn := connector.Attach(rt, connector.Config{
		Encoder:        jsonmsg.FastEncoder{},
		Meta:           jsonmsg.JobMeta{UID: 99066, JobID: 1, Exe: "/projects/hacc/hacc-io"},
		ChargeOverhead: true,
	}, func(producer string) *ldms.Daemon { return nodeDaemons[producer] })

	// Telemetry: every soak run carries its own registry and the report
	// embeds the snapshot, so the per-stage breakdown is always next to
	// the invariant audit. Trace hops run on the engine's virtual clock.
	reg := obs.NewRegistry()
	clock := obs.Clock(e.Now)
	conn.Instrument(reg)
	connector.Collect(reg, []*connector.Connector{conn})
	nodeBuses := make([]*streams.Bus, 0, len(nodeDaemons))
	for _, n := range m.Nodes() {
		d := nodeDaemons[n.Name]
		d.Bus().Instrument(hopNodeBus, clock)
		nodeBuses = append(nodeBuses, d.Bus())
	}
	collectBusGroup(reg, hopNodeBus, nodeBuses)
	head.Daemon.Bus().Instrument(hopHeadBus, clock)
	head.Daemon.Bus().Collect(reg, hopHeadBus)
	remote.Daemon.Bus().Instrument(hopRemoteBus, clock)
	remote.Daemon.Bus().Collect(reg, hopRemoteBus)
	dedup.Instrument(reg, clock)
	retry.Collect(reg)
	dstore.Instrument(reg, clock)
	sc.Instrument(reg, clock)

	profile := faults.Profile{Name: name}
	if mkProfile != nil {
		profile = mkProfile(linkNames, crashNames)
	}
	if err := ctl.Apply(profile); err != nil {
		return nil, nil, err
	}

	// Mid-run queries exercise quorum merge and read repair while the
	// faults are live (the paper's run-time diagnosis, against a degraded
	// store).
	midRepaired := 0
	if horizon > 0 {
		for _, f := range []float64{0.4, 0.75} {
			e.At(time.Duration(f*float64(horizon)), func() {
				if _, info, err := client.QueryEx("job_rank_time", nil, nil); err == nil {
					midRepaired += info.Repaired
				}
			})
		}
	}

	hacc := apps.DefaultHACCIO(m.Nodes()[:16], scaleInt64(cfg.ParticlesPerRank, cfg.Scale))
	apps.RunHACCIO(apps.Env{E: e, M: m, FS: fs, RT: rt}, hacc)
	if err := e.Run(0); err != nil {
		return nil, nil, err
	}
	runtime := e.Now()
	if err := e.Drain(runtime + time.Second); err != nil {
		return nil, nil, err
	}

	// Recover the fleet: any daemon still down comes back (replaying its
	// WAL) before the audit, like operators restoring service post-incident.
	for _, d := range sc.Daemons() {
		if err := d.Restart(); err != nil {
			return nil, nil, err
		}
	}

	merged, info, err := client.QueryEx("job_rank_time", nil, nil)
	if err != nil {
		return nil, nil, err
	}
	mergedSet := map[string]int{}
	for _, o := range merged {
		mergedSet[chaosObjKey(o)]++
	}

	res := &ChaosRunResult{
		Schedule:  profile.Name,
		Runtime:   runtime,
		Published: conn.Stats().Published,
		Deduped:   dedup.Duplicates(),
		Repaired:  midRepaired + info.Repaired,
		Merged:    len(merged),
		Log:       ctl.Log(),
	}
	acked, ackedSet := ack.snapshot()
	res.Acked = acked
	for _, l := range allLinks {
		st := l.Stats()
		res.LinkDropped += st.Dropped
		res.LinkRecovered += st.Recovered
		res.LinkDuplicated += st.Duplicated
	}
	retries, failures, _ := retry.Stats()
	res.StoreRetries = retries
	res.StoreDrops = failures
	for _, d := range sc.Daemons() {
		res.WALRecovered += d.Recovered()
	}

	// --- Invariant audit ---

	// 1. No acked event lost.
	missing := 0
	for k, n := range ackedSet {
		if mergedSet[k] < n {
			missing += n - mergedSet[k]
		}
	}
	if missing > 0 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("acked-but-lost: %d acked objects missing from the merged view", missing))
	}

	// 2. No duplicate stored: the merged view never exceeds the fault-free
	// oracle (or, for the oracle run itself, its own acked multiset).
	ref := oracle
	if ref == nil {
		ref = ackedSet
	}
	extra := 0
	for k, n := range mergedSet {
		if n > ref[k] {
			extra += n - ref[k]
		}
	}
	if extra > 0 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("duplicate-stored: %d objects beyond the fault-free reference", extra))
	}

	// 3. Replicas converge: post-repair, every origin on >= R daemons and a
	// second query finds nothing left to repair.
	if cfg.Replication > 1 {
		copies := map[uint64]int{}
		for _, d := range sc.Daemons() {
			err := d.IterOrigins("job_rank_time", nil, func(_ sos.Object, o uint64) bool {
				if o != 0 {
					copies[o]++
				}
				return true
			})
			if err != nil {
				return nil, nil, err
			}
		}
		under := 0
		for _, c := range copies {
			if c < cfg.Replication {
				under++
			}
		}
		if under > 0 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("replica-divergence: %d origins under-replicated after read repair", under))
		}
		again, info2, err := client.QueryEx("job_rank_time", nil, nil)
		if err != nil {
			return nil, nil, err
		}
		if len(again) != len(merged) || info2.Repaired != 0 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("unstable-view: second query returned %d objects and repaired %d (want %d and 0)",
					len(again), info2.Repaired, len(merged)))
		}
	}

	res.Obs = reg.Snapshot()

	// 4. A lossless run must reproduce the oracle exactly.
	storeErrs, _ := handle.Errors()
	if oracle != nil && res.LinkDropped == 0 && res.StoreDrops == 0 && storeErrs == 0 {
		if len(mergedSet) != len(oracle) || missing > 0 || extra > 0 || res.Merged != multisetSize(oracle) {
			res.Violations = append(res.Violations,
				"oracle-mismatch: lossless run diverged from the fault-free oracle")
		}
	}

	return res, mergedSet, nil
}

func multisetSize(set map[string]int) int {
	n := 0
	for _, c := range set {
		n += c
	}
	return n
}

// ChaosSoak runs the fault-free oracle and then every randomized schedule,
// auditing the invariants after each. Everything is drawn from cfg.Seed, so
// a soak replays bit-for-bit.
func ChaosSoak(cfg ChaosSoakConfig) (*ChaosSoakResult, error) {
	if cfg.Schedules <= 0 {
		cfg.Schedules = 20
	}
	if cfg.EventsPerSchedule <= 0 {
		cfg.EventsPerSchedule = 6
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.ParticlesPerRank <= 0 {
		cfg.ParticlesPerRank = 5_000_000
	}
	if cfg.Daemons <= 0 {
		cfg.Daemons = 4
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}

	oracleRes, oracleSet, err := runChaosSoak(cfg, "oracle", nil, 0, nil)
	if err != nil {
		return nil, err
	}
	out := &ChaosSoakResult{
		Label: fmt.Sprintf("HACC-IO %s, %d dsosd, R=%d, WAL=%v",
			cfg.FSKind, cfg.Daemons, cfg.Replication, cfg.WAL),
		Config: cfg,
		Oracle: *oracleRes,
	}
	out.Violations += len(oracleRes.Violations)
	horizon := oracleRes.Runtime
	scheduleRoot := rng.New(cfg.Seed)
	for i := 0; i < cfg.Schedules; i++ {
		r := scheduleRoot.DeriveN("chaos-schedule", i)
		name := fmt.Sprintf("chaos-%02d", i)
		mk := func(links, crashes []string) faults.Profile {
			return soakSchedule(r, name, horizon, links, crashes, cfg.EventsPerSchedule)
		}
		res, _, err := runChaosSoak(cfg, name, mk, horizon, oracleSet)
		if err != nil {
			return nil, err
		}
		out.Runs = append(out.Runs, *res)
		out.Violations += len(res.Violations)
	}
	return out, nil
}

// RenderChaosSoak formats the soak as a per-schedule accounting table plus
// every invariant violation (and the fault log of violating runs).
func RenderChaosSoak(c *ChaosSoakResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos soak: %s (seed %d, %d schedules, oracle runtime %.3fs, oracle objects %d)\n",
		c.Label, c.Config.Seed, len(c.Runs), c.Oracle.Runtime.Seconds(), c.Oracle.Merged)
	fmt.Fprintf(&b, "%-10s %9s %7s %7s %8s %7s %7s %7s %8s %7s %7s %s\n",
		"schedule", "published", "acked", "deduped", "dropped", "recov", "dup", "retries", "walrec", "repair", "merged", "invariants")
	row := func(r ChaosRunResult) {
		verdict := "ok"
		if len(r.Violations) > 0 {
			verdict = fmt.Sprintf("VIOLATED (%d)", len(r.Violations))
		}
		fmt.Fprintf(&b, "%-10s %9d %7d %7d %8d %7d %7d %7d %8d %7d %7d %s\n",
			r.Schedule, r.Published, r.Acked, r.Deduped, r.LinkDropped, r.LinkRecovered,
			r.LinkDuplicated, r.StoreRetries, r.WALRecovered, r.Repaired, r.Merged, verdict)
	}
	row(c.Oracle)
	for _, r := range c.Runs {
		row(r)
	}
	fmt.Fprintf(&b, "total invariant violations: %d\n", c.Violations)
	for _, r := range c.Runs {
		if len(r.Violations) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n%s violations:\n", r.Schedule)
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
		for _, rec := range r.Log {
			fmt.Fprintf(&b, "  %s\n", rec)
		}
	}
	renderObsSection(&b, "pipeline stage snapshot (oracle run):", c.Oracle.Obs)
	return b.String()
}
