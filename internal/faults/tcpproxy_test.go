package faults

import (
	"testing"
	"time"

	"darshanldms/internal/ldms"
)

func waitReceived(t *testing.T, srv *ldms.TCPServer, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Received() < want && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := srv.Received(); got < want {
		t.Fatalf("received %d, want >= %d", got, want)
	}
}

func TestTCPProxyKillAndPartition(t *testing.T) {
	agg := ldms.NewDaemon("agg", "head")
	srv, err := ldms.ListenTCP(agg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p, err := NewTCPProxy("127.0.0.1:0", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	node := ldms.NewDaemon("node", "nid00040")
	client, err := ldms.DialTCP(p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	sub := ldms.ForwardTCP(node, "darshanConnector", client)
	defer sub.Close()

	node.Bus().PublishJSON("darshanConnector", []byte(`{"n":1}`))
	waitReceived(t, srv, 1)

	// Kill the active connection mid-stream: the best-effort forwarder
	// keeps publishing without error and the data silently vanishes.
	if n := p.KillConnections(); n != 1 {
		t.Fatalf("killed %d connections, want 1", n)
	}
	for i := 0; i < 5; i++ {
		node.Bus().PublishJSON("darshanConnector", []byte(`{"n":2}`))
		time.Sleep(time.Millisecond)
	}
	if got := srv.Received(); got != 1 {
		t.Fatalf("received %d after kill, want still 1", got)
	}

	// A fresh connection through the proxy works again...
	client2, err := ldms.DialTCP(p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	sub2 := ldms.ForwardTCP(node, "darshanConnector", client2)
	defer sub2.Close()
	node.Bus().PublishJSON("darshanConnector", []byte(`{"n":3}`))
	waitReceived(t, srv, 2)

	// ...until a partition black-holes the path.
	p.SetPartitioned(true)
	for i := 0; i < 5; i++ {
		node.Bus().PublishJSON("darshanConnector", []byte(`{"n":4}`))
		time.Sleep(time.Millisecond)
	}
	if got := srv.Received(); got != 2 {
		t.Fatalf("received %d during partition, want still 2", got)
	}
	p.SetPartitioned(false)

	client3, err := ldms.DialTCP(p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client3.Close()
	sub3 := ldms.ForwardTCP(node, "darshanConnector", client3)
	defer sub3.Close()
	node.Bus().PublishJSON("darshanConnector", []byte(`{"n":5}`))
	waitReceived(t, srv, 3)

	if p.Accepted() < 3 {
		t.Fatalf("accepted %d, want >= 3", p.Accepted())
	}
}
