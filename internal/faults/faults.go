// Package faults is a deterministic fault-injection framework for the
// monitoring pipeline. Faults are scheduled in *virtual* time on the
// simulation engine (internal/sim) so a campaign with a fixed seed replays
// bit-for-bit: daemon crash/restart, link partitions, latency spikes and
// slow-subscriber stalls against the simulated multi-hop topology, plus a
// TCP fault proxy (tcpproxy.go) for injecting connection kills and
// partitions between real daemons.
//
// The package answers the paper's Section IV-B worry — best-effort streams
// with "no reconnect or resend for delivery" lose data whenever anything
// on the path hiccups — by making those hiccups reproducible on demand, so
// the resilience layer (ldms.ReconnectingForwarder, ldms.RetryStore) can
// be exercised and measured instead of trusted.
package faults

import (
	"fmt"
	"sort"
	"time"

	"darshanldms/internal/rng"
	"darshanldms/internal/sim"
)

// Kind enumerates the injectable fault classes.
type Kind int

// Fault kinds.
const (
	// DaemonCrash takes a registered daemon down (its registered crash
	// hook runs, typically cutting every link touching it) and restarts
	// it after Duration.
	DaemonCrash Kind = iota
	// LinkPartition cuts a link: messages crossing it are dropped until
	// the partition heals after Duration.
	LinkPartition
	// LatencySpike adds Extra to a link's delivery latency for Duration.
	LatencySpike
	// SlowSubscriber stalls a link's consumer: messages queue in the
	// link's bounded stall buffer and are released (recovered) when the
	// stall ends; overflow beyond the buffer is dropped.
	SlowSubscriber
	// StoreFault activates a registered toggle for Duration — used for
	// store/ingest outages (e.g. dsos.Daemon.SetFault) and any other
	// on/off fault a campaign wires up.
	StoreFault
	// ReplayOutage takes a link down like LinkPartition, but models an
	// at-least-once transport (ldms.ReconnectingForwarder): messages spool
	// during the outage and the heal re-delivers them plus the pre-outage
	// tail — duplicates for a downstream DedupStore to absorb. The link
	// needs SetReplayTail for the duplicate part.
	ReplayOutage
)

func (k Kind) String() string {
	switch k {
	case DaemonCrash:
		return "daemon-crash"
	case LinkPartition:
		return "link-partition"
	case LatencySpike:
		return "latency-spike"
	case SlowSubscriber:
		return "slow-subscriber"
	case StoreFault:
		return "store-fault"
	case ReplayOutage:
		return "replay-outage"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled fault against a named target.
type Event struct {
	Kind     Kind
	Target   string        // registered link, daemon or toggle name
	At       time.Duration // virtual time the fault starts
	Duration time.Duration // how long it lasts (0 = until end of run)
	Extra    time.Duration // LatencySpike: added per-message latency
}

// Profile is a named fault schedule — one scenario of a campaign.
type Profile struct {
	Name   string
	Events []Event
}

// Record is one entry of the controller's fault log.
type Record struct {
	At  time.Duration
	Msg string
}

func (r Record) String() string { return fmt.Sprintf("[%8.3fs] %s", r.At.Seconds(), r.Msg) }

// Controller binds fault events to registered targets and schedules them
// on the engine. All state changes happen in engine context, so they are
// deterministic with respect to the simulated workload.
type Controller struct {
	e       *sim.Engine
	links   map[string]*Link
	crashes map[string]crashHooks
	toggles map[string]func(active bool)
	log     []Record
}

type crashHooks struct {
	crash   func()
	restart func()
}

// NewController creates a controller for the engine.
func NewController(e *sim.Engine) *Controller {
	return &Controller{
		e:       e,
		links:   map[string]*Link{},
		crashes: map[string]crashHooks{},
		toggles: map[string]func(active bool){},
	}
}

// RegisterLink makes a link addressable by profiles under name.
func (c *Controller) RegisterLink(name string, l *Link) {
	c.links[name] = l
}

// RegisterCrash makes a daemon addressable: crash runs when a DaemonCrash
// event starts, restart when it ends.
func (c *Controller) RegisterCrash(name string, crash, restart func()) {
	c.crashes[name] = crashHooks{crash: crash, restart: restart}
}

// RegisterToggle makes an on/off fault addressable for StoreFault events:
// set(true) at the event start, set(false) at its end.
func (c *Controller) RegisterToggle(name string, set func(active bool)) {
	c.toggles[name] = set
}

// note appends to the fault log at the current virtual time.
func (c *Controller) note(format string, args ...any) {
	c.log = append(c.log, Record{At: c.e.Now(), Msg: fmt.Sprintf(format, args...)})
}

// Log returns the fault log in schedule order.
func (c *Controller) Log() []Record { return c.log }

// Apply validates the profile against the registered targets and schedules
// every event on the engine. It must be called before the engine runs past
// the earliest event time.
func (c *Controller) Apply(p Profile) error {
	for i, ev := range p.Events {
		ev := ev
		switch ev.Kind {
		case LinkPartition, LatencySpike, SlowSubscriber, ReplayOutage:
			l, ok := c.links[ev.Target]
			if !ok {
				return fmt.Errorf("faults: profile %q event %d: unknown link %q", p.Name, i, ev.Target)
			}
			c.scheduleLink(ev, l)
		case DaemonCrash:
			h, ok := c.crashes[ev.Target]
			if !ok {
				return fmt.Errorf("faults: profile %q event %d: unknown daemon %q", p.Name, i, ev.Target)
			}
			c.e.At(ev.At, func() {
				c.note("crash daemon %s (down %v)", ev.Target, ev.Duration)
				h.crash()
			})
			if ev.Duration > 0 {
				c.e.At(ev.At+ev.Duration, func() {
					c.note("restart daemon %s", ev.Target)
					h.restart()
				})
			}
		case StoreFault:
			set, ok := c.toggles[ev.Target]
			if !ok {
				return fmt.Errorf("faults: profile %q event %d: unknown toggle %q", p.Name, i, ev.Target)
			}
			c.e.At(ev.At, func() {
				c.note("fault %s on", ev.Target)
				set(true)
			})
			if ev.Duration > 0 {
				c.e.At(ev.At+ev.Duration, func() {
					c.note("fault %s off", ev.Target)
					set(false)
				})
			}
		default:
			return fmt.Errorf("faults: profile %q event %d: unknown kind %v", p.Name, i, ev.Kind)
		}
	}
	return nil
}

func (c *Controller) scheduleLink(ev Event, l *Link) {
	switch ev.Kind {
	case LinkPartition:
		c.e.At(ev.At, func() {
			c.note("partition link %s (for %v)", ev.Target, ev.Duration)
			l.Cut()
		})
		if ev.Duration > 0 {
			c.e.At(ev.At+ev.Duration, func() {
				c.note("heal link %s", ev.Target)
				l.Restore()
			})
		}
	case LatencySpike:
		c.e.At(ev.At, func() {
			c.note("latency spike on %s: +%v (for %v)", ev.Target, ev.Extra, ev.Duration)
			l.SetExtraLatency(ev.Extra)
		})
		if ev.Duration > 0 {
			c.e.At(ev.At+ev.Duration, func() {
				c.note("latency restored on %s", ev.Target)
				l.SetExtraLatency(0)
			})
		}
	case SlowSubscriber:
		c.e.At(ev.At, func() {
			c.note("stall subscriber on %s (for %v)", ev.Target, ev.Duration)
			l.Stall()
		})
		if ev.Duration > 0 {
			c.e.At(ev.At+ev.Duration, func() {
				rec := l.Unstall()
				c.note("release subscriber on %s (%d recovered)", ev.Target, rec)
			})
		}
	case ReplayOutage:
		c.e.At(ev.At, func() {
			c.note("replay outage on %s (for %v)", ev.Target, ev.Duration)
			l.CutReplay()
		})
		if ev.Duration > 0 {
			c.e.At(ev.At+ev.Duration, func() {
				dup, rec := l.RestoreReplay()
				c.note("replay heal on %s (%d duplicated, %d recovered)", ev.Target, dup, rec)
			})
		}
	}
}

// RandomProfile draws n events deterministically from r over [0, horizon):
// a quick way to generate "as many scenarios as you can imagine" stress
// schedules. Targets are drawn uniformly from links (and daemons, when
// provided); kinds from the link-fault classes plus DaemonCrash when
// daemons are given. Events are returned sorted by start time.
func RandomProfile(r *rng.Stream, name string, horizon time.Duration, n int, links, daemons []string) Profile {
	p := Profile{Name: name}
	if n <= 0 || horizon <= 0 || (len(links) == 0 && len(daemons) == 0) {
		return p
	}
	for i := 0; i < n; i++ {
		at := time.Duration(r.Float64() * float64(horizon))
		dur := time.Duration(r.Uniform(0.02, 0.2) * float64(horizon))
		var ev Event
		if len(daemons) > 0 && (len(links) == 0 || r.Bool(0.25)) {
			ev = Event{Kind: DaemonCrash, Target: daemons[r.Intn(len(daemons))], At: at, Duration: dur}
		} else {
			kind := []Kind{LinkPartition, LatencySpike, SlowSubscriber}[r.Intn(3)]
			ev = Event{Kind: kind, Target: links[r.Intn(len(links))], At: at, Duration: dur}
			if kind == LatencySpike {
				ev.Extra = time.Duration(r.Uniform(1, 50)) * time.Millisecond
			}
		}
		p.Events = append(p.Events, ev)
	}
	sort.Slice(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p
}
