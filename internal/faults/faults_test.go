package faults

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"darshanldms/internal/ldms"
	"darshanldms/internal/rng"
	"darshanldms/internal/sim"
	"darshanldms/internal/streams"
)

func streamsMessage(body string) streams.Message {
	return streams.Message{Tag: tag, Type: streams.TypeJSON, Data: []byte(body)}
}

const tag = "darshanConnector"

// publishEvery schedules n publishes on src at a fixed virtual-time cadence
// starting at t=0.
func publishEvery(e *sim.Engine, src *ldms.Daemon, n int, every time.Duration) {
	for i := 0; i < n; i++ {
		i := i
		e.At(time.Duration(i)*every, func() {
			src.Bus().PublishJSON(tag, []byte(fmt.Sprintf(`{"seq":%d}`, i)))
		})
	}
}

func TestLinkPartitionDropsThenHeals(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	src := ldms.NewDaemon("node", "nid00040")
	dst := ldms.NewDaemon("agg", "head")
	count := &ldms.CountStore{}
	dst.AttachStore(tag, count)
	l := NewLink(e, src, dst, tag, 100*time.Microsecond)

	c := NewController(e)
	c.RegisterLink("uplink", l)
	// 20 messages at 10ms cadence; partition covers t=[50ms,100ms) i.e.
	// publishes 5..9.
	publishEvery(e, src, 20, 10*time.Millisecond)
	err := c.Apply(Profile{Name: "partition", Events: []Event{
		{Kind: LinkPartition, Target: "uplink", At: 50 * time.Millisecond, Duration: 50 * time.Millisecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Dropped != 5 {
		t.Fatalf("dropped %d, want 5", st.Dropped)
	}
	if st.Forwarded != 15 || count.Count() != 15 {
		t.Fatalf("forwarded %d delivered %d, want 15/15", st.Forwarded, count.Count())
	}
	if len(c.Log()) != 2 {
		t.Fatalf("fault log %v, want 2 records", c.Log())
	}
}

func TestSlowSubscriberStallRecovers(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	src := ldms.NewDaemon("node", "nid00041")
	dst := ldms.NewDaemon("agg", "head")
	count := &ldms.CountStore{}
	dst.AttachStore(tag, count)
	l := NewLink(e, src, dst, tag, 0)

	c := NewController(e)
	c.RegisterLink("uplink", l)
	publishEvery(e, src, 20, 10*time.Millisecond)
	err := c.Apply(Profile{Name: "stall", Events: []Event{
		{Kind: SlowSubscriber, Target: "uplink", At: 50 * time.Millisecond, Duration: 100 * time.Millisecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	// Publishes 5..14 are queued during the stall and released at t=150ms:
	// nothing is lost, 10 are recovered.
	if st.Dropped != 0 {
		t.Fatalf("dropped %d, want 0", st.Dropped)
	}
	if st.Recovered != 10 {
		t.Fatalf("recovered %d, want 10", st.Recovered)
	}
	if count.Count() != 20 {
		t.Fatalf("delivered %d, want all 20", count.Count())
	}
}

func TestStallBufferOverflowSheds(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	src := ldms.NewDaemon("node", "nid00042")
	dst := ldms.NewDaemon("agg", "head")
	l := NewLink(e, src, dst, tag, 0)
	l.SetStallQueue(3)

	l.Stall() // stalled before the run starts
	publishEvery(e, src, 10, time.Millisecond)
	e.At(50*time.Millisecond, func() { l.Unstall() })
	if err := e.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Recovered != 3 {
		t.Fatalf("recovered %d, want 3 (queue bound)", st.Recovered)
	}
	if st.Dropped != 7 {
		t.Fatalf("dropped %d, want 7", st.Dropped)
	}
}

func TestLatencySpikeDelaysDelivery(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	src := ldms.NewDaemon("node", "nid00043")
	dst := ldms.NewDaemon("agg", "head")
	var arrivals []time.Duration
	dst.Bus().Subscribe(tag, func(m streams.Message) {
		arrivals = append(arrivals, e.Now())
	})
	l := NewLink(e, src, dst, tag, time.Millisecond)

	c := NewController(e)
	c.RegisterLink("uplink", l)
	// Publishes at 0,10,20,30ms; the spike covers t=[5ms,25ms) so the
	// middle two arrive base+extra later.
	publishEvery(e, src, 4, 10*time.Millisecond)
	err := c.Apply(Profile{Name: "spike", Events: []Event{
		{Kind: LatencySpike, Target: "uplink", At: 5 * time.Millisecond,
			Duration: 20 * time.Millisecond, Extra: 7 * time.Millisecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{
		1 * time.Millisecond,  // t=0 + base 1ms
		18 * time.Millisecond, // t=10 + 1ms + 7ms spike
		28 * time.Millisecond, // t=20 + 1ms + 7ms spike
		31 * time.Millisecond, // t=30 + base 1ms (spike over)
	}
	// Arrivals are sorted because the engine delivers in time order.
	sortDurations(arrivals)
	if !reflect.DeepEqual(arrivals, want) {
		t.Fatalf("arrivals %v, want %v", arrivals, want)
	}
}

func sortDurations(d []time.Duration) {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
}

func TestDaemonCrashCutsAllLinks(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	node := ldms.NewDaemon("node", "nid00044")
	head := ldms.NewDaemon("agg", "head")
	remote := ldms.NewDaemon("agg", "remote")
	count := &ldms.CountStore{}
	remote.AttachStore(tag, count)
	links := Chain(e, tag, 100*time.Microsecond, node, head, remote)

	c := NewController(e)
	crash, restart := CrashDaemon(links...)
	c.RegisterCrash("head", crash, restart)
	publishEvery(e, node, 20, 10*time.Millisecond)
	err := c.Apply(Profile{Name: "crash", Events: []Event{
		{Kind: DaemonCrash, Target: "head", At: 25 * time.Millisecond, Duration: 50 * time.Millisecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
	// Publishes 3..7 (t=30..70ms) hit the cut first hop.
	if got := links[0].Stats().Dropped; got != 5 {
		t.Fatalf("first hop dropped %d, want 5", got)
	}
	if count.Count() != 15 {
		t.Fatalf("delivered %d, want 15", count.Count())
	}
}

func TestApplyRejectsUnknownTargets(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := NewController(e)
	for _, p := range []Profile{
		{Name: "p1", Events: []Event{{Kind: LinkPartition, Target: "nope", At: 0}}},
		{Name: "p2", Events: []Event{{Kind: DaemonCrash, Target: "nope", At: 0}}},
		{Name: "p3", Events: []Event{{Kind: StoreFault, Target: "nope", At: 0}}},
	} {
		if err := c.Apply(p); err == nil {
			t.Fatalf("profile %s: expected error for unknown target", p.Name)
		}
	}
}

// runScenario builds a fixed topology, applies a RandomProfile drawn from
// seed, runs it, and returns (fault log, delivered, dropped) — used to prove
// two same-seed campaigns replay bit-for-bit.
func runScenario(t *testing.T, seed uint64) ([]string, uint64, uint64) {
	t.Helper()
	e := sim.NewEngine()
	defer e.Close()
	node := ldms.NewDaemon("node", "nid00045")
	head := ldms.NewDaemon("agg", "head")
	remote := ldms.NewDaemon("agg", "remote")
	count := &ldms.CountStore{}
	remote.AttachStore(tag, count)
	links := Chain(e, tag, 150*time.Microsecond, node, head, remote)

	c := NewController(e)
	c.RegisterLink("uplink", links[0])
	c.RegisterLink("downlink", links[1])
	crash, restart := CrashDaemon(links...)
	c.RegisterCrash("head", crash, restart)

	r := rng.New(seed).Derive("faults")
	p := RandomProfile(r, "random", time.Second, 8,
		[]string{"uplink", "downlink"}, []string{"head"})
	publishEvery(e, node, 100, 10*time.Millisecond)
	if err := c.Apply(p); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	var log []string
	for _, rec := range c.Log() {
		log = append(log, rec.String())
	}
	dropped := links[0].Stats().Dropped + links[1].Stats().Dropped
	return log, uint64(count.Count()), dropped
}

func TestCampaignDeterministicUnderFixedSeed(t *testing.T) {
	log1, del1, drop1 := runScenario(t, 2022)
	log2, del2, drop2 := runScenario(t, 2022)
	if !reflect.DeepEqual(log1, log2) {
		t.Fatalf("fault logs differ:\n%v\n%v", log1, log2)
	}
	if del1 != del2 || drop1 != drop2 {
		t.Fatalf("counts differ: %d/%d vs %d/%d", del1, drop1, del2, drop2)
	}
	if len(log1) == 0 {
		t.Fatal("expected a non-empty fault log")
	}
	// A different seed must yield a different schedule (overwhelmingly).
	log3, _, _ := runScenario(t, 99)
	if reflect.DeepEqual(log1, log3) {
		t.Fatal("different seeds produced identical fault logs")
	}
}

func TestRandomProfileDeterministic(t *testing.T) {
	links := []string{"a", "b"}
	daemons := []string{"d"}
	p1 := RandomProfile(rng.New(7), "r", time.Second, 16, links, daemons)
	p2 := RandomProfile(rng.New(7), "r", time.Second, 16, links, daemons)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("same seed produced different profiles")
	}
	if len(p1.Events) != 16 {
		t.Fatalf("got %d events, want 16", len(p1.Events))
	}
	for i := 1; i < len(p1.Events); i++ {
		if p1.Events[i].At < p1.Events[i-1].At {
			t.Fatal("events not sorted by start time")
		}
	}
}

func TestFlakyStoreInjection(t *testing.T) {
	inner := &ldms.CountStore{}
	fs := NewFlakyStore(inner, rng.New(1).Derive("flaky"), 1.0) // always fail while active
	m := streamsMessage(`{"n":1}`)
	if err := fs.Store(m); err != nil {
		t.Fatalf("inactive store failed: %v", err)
	}
	fs.SetActive(true)
	if err := fs.Store(m); !ErrInjected(err) {
		t.Fatalf("expected injected failure, got %v", err)
	}
	fs.SetActive(false)
	if err := fs.Store(m); err != nil {
		t.Fatalf("healed store failed: %v", err)
	}
	if fs.Failed() != 1 || inner.Count() != 2 {
		t.Fatalf("failed=%d inner=%d, want 1/2", fs.Failed(), inner.Count())
	}
}
