package faults

import (
	"time"

	"darshanldms/internal/ldms"
	"darshanldms/internal/rng"
	"darshanldms/internal/sim"
	"darshanldms/internal/streams"
)

// LinkStats counts a fault-aware link's activity.
type LinkStats struct {
	Forwarded  uint64 // messages delivered (or scheduled for delivery)
	Dropped    uint64 // messages lost to partitions or stall overflow
	Recovered  uint64 // messages held during a stall/replay outage, delivered after
	Duplicated uint64 // tail messages re-delivered by a replay-outage heal
	Queued     int    // messages currently in the stall buffer
}

// Link is one fault-injectable hop of the simulated LDMS topology — a
// drop-in replacement for ldms.Relay that a Controller can partition,
// slow down or stall. In its default state it behaves exactly like Relay:
// forward every message after the hop latency.
type Link struct {
	e       *sim.Engine
	to      *ldms.Daemon
	tag     string
	latency time.Duration
	sub     *streams.Subscription

	// Fault state; mutated only in engine context, so no lock is needed
	// (the simulation runs one process or callback at a time).
	down     bool
	extra    time.Duration
	stalled  bool
	queue    []streams.Message
	maxQueue int

	// Replay-outage state: a link modeling an at-least-once transport
	// (ldms.ReconnectingForwarder) spools during the outage instead of
	// dropping, and on heal re-delivers the recent pre-outage tail — the
	// frames whose fate the sender could not know — before the spool.
	// ringCap is set by SetReplayTail; spooling marks a CutReplay outage.
	ringCap  int
	ring     []streams.Message
	spooling bool
	spool    []streams.Message

	st LinkStats
}

// DefaultStallQueue bounds the stall buffer: a slow subscriber holds at
// most this many messages before the link starts shedding, mirroring the
// bounded-memory stance of ldms.RateLimitedRelay.
const DefaultStallQueue = 4096

// NewLink wires a fault-aware relay hop from one daemon's bus to another.
func NewLink(e *sim.Engine, from, to *ldms.Daemon, tag string, latency time.Duration) *Link {
	l := &Link{e: e, to: to, tag: tag, latency: latency, maxQueue: DefaultStallQueue}
	l.sub = from.Bus().Subscribe(tag, l.handle)
	return l
}

// SetStallQueue overrides the stall buffer bound (n <= 0 keeps the
// default).
func (l *Link) SetStallQueue(n int) {
	if n > 0 {
		l.maxQueue = n
	}
}

func (l *Link) handle(m streams.Message) {
	switch {
	case l.down && l.spooling:
		if len(l.spool) >= l.maxQueue {
			l.st.Dropped++
			return
		}
		l.spool = append(l.spool, m)
	case l.down:
		l.st.Dropped++
	case l.stalled:
		if len(l.queue) >= l.maxQueue {
			l.st.Dropped++
			return
		}
		l.queue = append(l.queue, m)
	default:
		l.deliver(m)
	}
}

func (l *Link) deliver(m streams.Message) {
	l.st.Forwarded++
	if l.ringCap > 0 {
		l.ring = append(l.ring, m)
		if len(l.ring) > l.ringCap {
			l.ring = l.ring[1:]
		}
	}
	if d := l.latency + l.extra; d > 0 {
		l.e.After(d, func() { l.to.Bus().Publish(m) })
		return
	}
	l.to.Bus().Publish(m)
}

// Cut partitions the link: subsequent messages are dropped.
func (l *Link) Cut() { l.down = true }

// Restore heals a partition.
func (l *Link) Restore() { l.down = false }

// SetReplayTail makes the link model an at-least-once transport: the last
// n delivered messages are retained, and a CutReplay/RestoreReplay outage
// re-delivers them on heal (duplicates for a downstream dedup to absorb).
// n <= 0 turns the modeling off.
func (l *Link) SetReplayTail(n int) {
	if n <= 0 {
		l.ringCap = 0
		l.ring = nil
		return
	}
	l.ringCap = n
}

// CutReplay takes the link down like Cut, but as an at-least-once
// transport outage: messages spool (bounded by the stall queue limit)
// instead of dropping, awaiting the heal.
func (l *Link) CutReplay() {
	l.down = true
	l.spooling = true
}

// RestoreReplay heals a CutReplay outage: the pre-outage tail is
// re-delivered first (counted Duplicated — the sender cannot know those
// frames arrived), then the spooled messages (counted Recovered). Returns
// the two counts.
func (l *Link) RestoreReplay() (dup, recovered int) {
	l.down = false
	l.spooling = false
	tail := l.ring
	l.ring = nil // deliver() below re-fills the ring as it re-sends
	for _, m := range tail {
		l.st.Duplicated++
		l.deliver(m)
	}
	spool := l.spool
	l.spool = nil
	for _, m := range spool {
		l.st.Recovered++
		l.deliver(m)
	}
	return len(tail), len(spool)
}

// Down reports whether the link is currently partitioned.
func (l *Link) Down() bool { return l.down }

// SetExtraLatency adds d to every delivery (0 restores the base latency).
func (l *Link) SetExtraLatency(d time.Duration) { l.extra = d }

// Stall models a slow subscriber: messages queue in the bounded stall
// buffer instead of being delivered.
func (l *Link) Stall() { l.stalled = true }

// Unstall releases the stall: queued messages are delivered in order and
// counted as recovered. It returns how many were released.
func (l *Link) Unstall() int {
	l.stalled = false
	n := len(l.queue)
	for _, m := range l.queue {
		l.st.Recovered++
		l.deliver(m)
	}
	l.queue = nil
	return n
}

// Close detaches the link from the source bus.
func (l *Link) Close() { l.sub.Close() }

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats {
	st := l.st
	st.Queued = len(l.queue)
	return st
}

// Chain wires a fault-aware multi-hop path (like ldms.Chain) and returns
// the links so each hop can be registered with a Controller.
func Chain(e *sim.Engine, tag string, latency time.Duration, daemons ...*ldms.Daemon) []*Link {
	if len(daemons) < 2 {
		panic("faults: chain needs at least two daemons")
	}
	links := make([]*Link, 0, len(daemons)-1)
	for i := 0; i+1 < len(daemons); i++ {
		links = append(links, NewLink(e, daemons[i], daemons[i+1], tag, latency))
	}
	return links
}

// CrashDaemon returns crash/restart hooks that cut and restore every given
// link — the topology-level effect of the daemon at their junction dying.
// Register the pair with Controller.RegisterCrash.
func CrashDaemon(links ...*Link) (crash, restart func()) {
	crash = func() {
		for _, l := range links {
			l.Cut()
		}
	}
	restart = func() {
		for _, l := range links {
			l.Restore()
		}
	}
	return crash, restart
}

// FlakyStore wraps an ldms.StorePlugin with deterministic transient
// failures: while active, each Store call fails with probability p drawn
// from its rng stream. Pair it with ldms.RetryStore to demonstrate the
// retry-with-timeout ingest path under an unreliable dsosd.
type FlakyStore struct {
	inner  ldms.StorePlugin
	r      *rng.Stream
	p      float64
	active bool
	failed uint64
}

// NewFlakyStore builds the wrapper; r drives the failure coin flips.
func NewFlakyStore(inner ldms.StorePlugin, r *rng.Stream, p float64) *FlakyStore {
	return &FlakyStore{inner: inner, r: r, p: p}
}

// SetActive turns the failure injection on or off (a Controller toggle).
func (f *FlakyStore) SetActive(active bool) { f.active = active }

// Failed returns how many Store calls were failed by injection.
func (f *FlakyStore) Failed() uint64 { return f.failed }

// Name implements ldms.StorePlugin.
func (f *FlakyStore) Name() string { return "flaky(" + f.inner.Name() + ")" }

// Store implements ldms.StorePlugin.
func (f *FlakyStore) Store(m streams.Message) error {
	if f.active && f.r.Bool(f.p) {
		f.failed++
		return errInjected
	}
	return f.inner.Store(m)
}

type injectedError struct{}

func (injectedError) Error() string { return "faults: injected store failure" }

// ErrInjected is the sentinel returned by injected store failures.
var errInjected = injectedError{}

// ErrInjected reports whether err came from fault injection.
func ErrInjected(err error) bool { return err == errInjected }
