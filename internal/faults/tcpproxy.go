package faults

import (
	"io"
	"net"
	"sync"
	"time"
)

// TCPProxy sits between a real transport client and a real daemon and
// injects faults on the wire: kill every active connection (the "TCP
// connection kill" fault), black-hole new connections (a link partition),
// or delay each copied chunk (a latency spike). Unlike the simulated Link
// it operates in wall-clock time — it exists to exercise the reconnect
// path of real daemons (cmd/ldmsd, ldms.ReconnectingForwarder), not to be
// deterministic.
type TCPProxy struct {
	ln       net.Listener
	upstream string

	mu          sync.Mutex
	conns       map[net.Conn]struct{} // accepted client conns
	partitioned bool
	delay       time.Duration
	accepted    uint64
	killed      uint64
	closed      bool
	wg          sync.WaitGroup
}

// NewTCPProxy listens on addr (e.g. "127.0.0.1:0") and forwards each
// accepted connection to upstream.
func NewTCPProxy(addr, upstream string) (*TCPProxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &TCPProxy{ln: ln, upstream: upstream, conns: map[net.Conn]struct{}{}}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (point clients here).
func (p *TCPProxy) Addr() string { return p.ln.Addr().String() }

// Accepted returns how many connections the proxy has accepted.
func (p *TCPProxy) Accepted() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accepted
}

func (p *TCPProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed || p.partitioned {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		p.accepted++
		p.conns[conn] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.pipe(conn)
	}
}

// pipe shuttles bytes client<->upstream until either side dies.
func (p *TCPProxy) pipe(client net.Conn) {
	defer p.wg.Done()
	defer p.drop(client)
	up, err := net.DialTimeout("tcp", p.upstream, 2*time.Second)
	if err != nil {
		return
	}
	defer up.Close()
	done := make(chan struct{}, 2)
	copyDir := func(dst, src net.Conn) {
		buf := make([]byte, 32<<10)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				if d := p.currentDelay(); d > 0 {
					time.Sleep(d)
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		// Unblock the opposite direction.
		dst.Close()
		src.Close()
		done <- struct{}{}
	}
	go copyDir(up, client)
	copyDir(client, up)
	<-done
}

func (p *TCPProxy) currentDelay() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.delay
}

func (p *TCPProxy) drop(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

// KillConnections closes every active proxied connection; clients see a
// reset mid-stream. New connections are still accepted.
func (p *TCPProxy) KillConnections() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.conns)
	p.killed += uint64(n)
	for c := range p.conns {
		c.Close()
	}
	return n
}

// SetPartitioned black-holes the proxy: active connections are killed and
// new ones are refused until the partition heals.
func (p *TCPProxy) SetPartitioned(v bool) {
	p.mu.Lock()
	p.partitioned = v
	if v {
		for c := range p.conns {
			c.Close()
		}
	}
	p.mu.Unlock()
}

// SetDelay injects d of extra latency into every copied chunk (0 clears).
func (p *TCPProxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// Close stops the proxy and all connections.
func (p *TCPProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

// Interface check: the proxy never reads frames, only bytes.
var _ io.Closer = (*TCPProxy)(nil)
