package lint

import (
	"path/filepath"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	findings := []Finding{
		{File: filepath.Join(root, "a", "x.go"), Line: 3, Check: "poolleak"},
		{File: filepath.Join(root, "a", "x.go"), Line: 9, Check: "poolleak"},
		{File: filepath.Join(root, "b", "y.go"), Line: 1, Check: "ackleak"},
	}
	b := NewBaseline(root, findings)
	if len(b.Entries) != 2 {
		t.Fatalf("entries = %d, want 2 (aggregated by file+check): %+v", len(b.Entries), b.Entries)
	}
	path := filepath.Join(root, "lint.baseline")
	if err := b.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 2 || back.Entries[0] != b.Entries[0] || back.Entries[1] != b.Entries[1] {
		t.Fatalf("round trip mismatch: %+v != %+v", back.Entries, b.Entries)
	}

	// The exact recorded findings are absorbed.
	fresh, stale, suppressed := back.Apply(root, findings)
	if len(fresh) != 0 || len(stale) != 0 || suppressed != 3 {
		t.Fatalf("apply(same) = fresh %d, stale %d, suppressed %d; want 0/0/3", len(fresh), len(stale), suppressed)
	}
}

func TestBaselineFreshFindingEscapes(t *testing.T) {
	root := t.TempDir()
	old := []Finding{{File: filepath.Join(root, "x.go"), Line: 3, Check: "poolleak"}}
	b := NewBaseline(root, old)

	// A second finding of the same class exceeds the budget.
	grown := append(old, Finding{File: filepath.Join(root, "x.go"), Line: 30, Check: "poolleak"})
	fresh, stale, suppressed := b.Apply(root, grown)
	if len(fresh) != 1 || fresh[0].Line != 30 {
		t.Fatalf("fresh = %+v, want the line-30 finding", fresh)
	}
	if len(stale) != 0 || suppressed != 1 {
		t.Fatalf("stale %d suppressed %d, want 0/1", len(stale), suppressed)
	}

	// A different class is fresh regardless.
	other := append(old, Finding{File: filepath.Join(root, "x.go"), Line: 4, Check: "ackleak"})
	fresh, _, _ = b.Apply(root, other)
	if len(fresh) != 1 || fresh[0].Check != "ackleak" {
		t.Fatalf("fresh = %+v, want the ackleak finding", fresh)
	}
}

func TestBaselineStaleEntry(t *testing.T) {
	root := t.TempDir()
	b := NewBaseline(root, []Finding{
		{File: filepath.Join(root, "x.go"), Line: 3, Check: "poolleak"},
		{File: filepath.Join(root, "y.go"), Line: 5, Check: "ackleak"},
	})
	// The poolleak debt was paid: its entry must go stale.
	fresh, stale, suppressed := b.Apply(root, []Finding{
		{File: filepath.Join(root, "y.go"), Line: 5, Check: "ackleak"},
	})
	if len(fresh) != 0 || suppressed != 1 {
		t.Fatalf("fresh %d suppressed %d, want 0/1", len(fresh), suppressed)
	}
	if len(stale) != 1 || stale[0].Check != "poolleak" {
		t.Fatalf("stale = %+v, want the poolleak entry", stale)
	}
}

func TestBaselineRelPathOutsideRoot(t *testing.T) {
	root := t.TempDir()
	got := relPath(root, "/somewhere/else/z.go")
	if got != "/somewhere/else/z.go" {
		t.Fatalf("relPath escaped root: %q", got)
	}
}
