package lint

import (
	"go/ast"
	"go/types"
)

var maporderCheck = &Check{
	Name: "maporder",
	Doc:  "map iteration order must not reach slices, writers or the event bus without a sort",
	Run:  runMaporder,
}

// Order-sensitive sinks inside a map-range body. Appending to an outer
// slice is flagged only when the slice is never sorted afterwards in the
// same function; writes and publishes are flagged unconditionally because
// the bytes are gone before any sort could fix them.
var (
	writerSinkNames = map[string]bool{
		"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
		"Fprintf": true, "Fprintln": true, "Fprint": true,
		"Printf": true, "Println": true, "Print": true,
	}
	publishSinkNames = map[string]bool{
		"Publish": true, "PublishJSON": true, "PublishString": true, "Emit": true,
	}
	sortFuncNames = map[string]bool{
		"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
		"Strings": true, "Ints": true, "Float64s": true,
		"SortFunc": true, "SortStableFunc": true,
	}
)

func runMaporder(p *Pass) {
	for _, file := range p.Files {
		f := file
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				p.maporderFunc(f, body)
			}
			return true
		})
	}
}

// maporderFunc scans one function body (excluding nested function literals,
// which get their own scan) for map ranges with order-sensitive effects.
func (p *Pass) maporderFunc(file *ast.File, body *ast.BlockStmt) {
	inspectSameFunc(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.TypeOf(rng.X)
		if t == nil {
			return true // no type info: cannot prove it is a map
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		p.checkMapRange(file, body, rng)
		return true
	})
}

func (p *Pass) checkMapRange(file *ast.File, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	// Pass 1: collect effects inside the range body.
	var appendees []*ast.Ident // outer slices appended to, in map order
	seenAppendee := map[string]bool{}
	sinkReported := false
	inspectSameFunc(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(call) || i >= len(st.Lhs) {
					continue
				}
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok {
					continue // appends into map values stay commutative
				}
				// Only appends to variables that outlive the loop matter.
				if obj := p.ObjectOf(id); obj != nil && obj.Pos() > rng.Pos() {
					continue
				}
				if !seenAppendee[id.Name] {
					seenAppendee[id.Name] = true
					appendees = append(appendees, id)
				}
			}
		case *ast.CallExpr:
			sel, ok := st.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if !sinkReported && (writerSinkNames[name] || publishSinkNames[name]) {
				sinkReported = true // one finding per range is enough
				verb := "written out"
				if publishSinkNames[name] {
					verb = "published"
				}
				p.Reportf(rng.Pos(),
					"collect into a slice, sort it, then write/publish from the sorted slice",
					"map iteration order is %s via %s inside the range body", verb, name)
				return false
			}
		}
		return true
	})

	// Pass 2: an appended slice is fine if the function sorts it after the
	// loop (the keys-then-sort idiom).
	for _, id := range appendees {
		if p.sortedAfter(funcBody, rng, id) {
			continue
		}
		p.Reportf(rng.Pos(),
			"sort "+id.Name+" after the loop (sort.Slice / slices.Sort), or iterate sorted keys",
			"map iteration order leaks into %q (append inside map range with no subsequent sort)", id.Name)
	}
}

// sortedAfter reports whether funcBody contains, after rng, a sort.* or
// slices.Sort* call whose arguments mention the same variable as id.
func (p *Pass) sortedAfter(funcBody *ast.BlockStmt, rng *ast.RangeStmt, id *ast.Ident) bool {
	obj := p.ObjectOf(id)
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= rng.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sortFuncNames[sel.Sel.Name] {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok || (pkgID.Name != "sort" && pkgID.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			arg := arg
			ast.Inspect(arg, func(an ast.Node) bool {
				aid, ok := an.(*ast.Ident)
				if !ok {
					return true
				}
				if obj != nil {
					if p.ObjectOf(aid) == obj {
						found = true
					}
				} else if aid.Name == id.Name {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// inspectSameFunc walks n but does not descend into nested function
// literals: those bodies are separate scan units.
func inspectSameFunc(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok && x != n {
			return false
		}
		return fn(x)
	})
}
