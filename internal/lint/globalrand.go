package lint

import (
	"go/ast"
	"strings"
)

var globalrandCheck = &Check{
	Name: "globalrand",
	Doc:  "no math/rand anywhere in non-test code; all randomness flows through seeded internal/rng streams",
	Run:  runGlobalrand,
}

// runGlobalrand flags any import of math/rand (v1 or v2). The package-level
// generator is process-global mutable state: one extra draw anywhere
// perturbs every downstream experiment, and the default seed path is
// nondeterministic. internal/rng provides splittable named streams rooted
// at an explicit seed, so every stochastic decision is attributable and
// reproducible bit-for-bit.
func runGlobalrand(p *Pass) {
	for _, file := range p.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != "math/rand" && path != "math/rand/v2" {
				continue
			}
			p.Reportf(imp.Pos(),
				"use darshanldms/internal/rng: rng.New(seed).Derive(\"label\") gives an independent deterministic stream",
				"import of %s: package-global randomness breaks seeded reproducibility", path)
		}
		// Belt and braces: a dot-imported or renamed rand still has the
		// import flagged above, but also flag package-level vars seeded
		// from it in case the import line carries an allow for another
		// reason.
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					v := v
					ast.Inspect(v, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						if _, ok := p.IsPkgCall(file, call, "math/rand", "New", "NewSource", "Seed"); ok {
							p.Reportf(call.Pos(),
								"seed an internal/rng.Stream at construction time instead",
								"package-level math/rand generator")
						}
						return true
					})
				}
			}
		}
	}
}
