package lint

import (
	"go/ast"
	"go/types"
)

var poolleakCheck = &Check{
	Name: "poolleak",
	Doc:  "a value checked out of an instrumented pool (BatchPool/BufferPool/SlabPool.Get) must reach Put or Release on every non-escaping path",
	Run:  runPoolleak,
}

// runPoolleak tracks every `v := pool.Get()` where pool's named type ends
// in "Pool" and either has a Put method (event.BatchPool, event.BufferPool)
// or checks out values with their own Release method (event.SlabPool's
// ref-counted slabs) — sync.Pool itself is exempt, its Get legitimately
// feeds type assertions that discard on miss. The CFG walk demands that
// every path from the Get reaches a `*.Put(v)` or `v.Release()` (directly
// or deferred), or that ownership escapes (v returned, stored into a
// field, handed to a non-borrowing call). A path that reaches the
// function exit with the value still held leaks a pooled buffer: the
// pool's Get/Put counters drift and the arena the batching hot loop
// depends on quietly degrades to per-flush allocation.
func runPoolleak(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				p.poolleakFunc(body)
			}
			return true
		})
	}
}

func (p *Pass) poolleakFunc(body *ast.BlockStmt) {
	type site struct {
		assign *ast.AssignStmt
		call   *ast.CallExpr
		ob     *obligation
	}
	var sites []site
	inspectSameFunc(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) < 1 {
			return true
		}
		call := unwrapPoolGet(as.Rhs[0])
		if call == nil || !p.isPoolGet(call) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		sites = append(sites, site{
			assign: as,
			call:   call,
			ob: &obligation{
				acquire: as,
				obj:     p.ObjectOf(id),
				name:    id.Name,
			},
		})
		return true
	})
	if len(sites) == 0 {
		return
	}
	g := buildCFG(body)
	for _, s := range sites {
		blk, idx := findNode(g, s.assign)
		if blk == nil {
			continue
		}
		spec := &obligationSpec{
			isRelease: func(ob *obligation, call *ast.CallExpr) bool {
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return false
				}
				switch sel.Sel.Name {
				case "Put":
					for _, a := range call.Args {
						if usesObligation(p, a, ob) {
							return true
						}
					}
				case "Release":
					// Ref-counted checkout: v.Release() is the discharge.
					return usesObligation(p, sel.X, ob)
				}
				return false
			},
		}
		spec.escapes = func(ob *obligation, n ast.Node) bool {
			return valueEscapes(p, ob, n, func(c *ast.CallExpr) bool { return spec.isRelease(ob, c) })
		}
		leaks := walkObligation(g, blk, idx+1, s.ob, spec)
		if len(leaks) == 0 {
			continue
		}
		recv := types.ExprString(s.call.Fun.(*ast.SelectorExpr).X)
		p.Reportf(s.call.Pos(),
			"return it with `defer "+recv+".Put("+s.ob.name+")` (or `defer "+s.ob.name+".Release()` for ref-counted checkouts) right after the Get, or discharge on every early-exit path",
			"%s.Get leaks: %q does not reach Put/Release on every path (%d leaking)", recv, s.ob.name, len(leaks))
	}
}

// unwrapPoolGet digs the Get call out of the RHS expression, looking
// through a type assertion (`pool.Get().(*T)` is the sync.Pool idiom).
func unwrapPoolGet(e ast.Expr) *ast.CallExpr {
	switch v := e.(type) {
	case *ast.CallExpr:
		return v
	case *ast.TypeAssertExpr:
		if call, ok := v.X.(*ast.CallExpr); ok {
			return call
		}
	}
	return nil
}

// isPoolGet matches x.Get() where x's named type ends in "Pool", is not
// sync.Pool itself, and discharges either through the pool (a Put
// method) or through the checked-out value (its Get result has a
// Release method — the SlabPool shape).
func (p *Pass) isPoolGet(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" || len(call.Args) != 0 {
		return false
	}
	t := p.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	name := obj.Name()
	if len(name) < 4 || name[len(name)-4:] != "Pool" {
		return false
	}
	if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
		return false
	}
	if hasMethod(t, "Put") {
		return true
	}
	if rt := p.TypeOf(call); rt != nil && hasMethod(rt, "Release") {
		return true
	}
	return false
}
