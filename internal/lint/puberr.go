package lint

import (
	"go/ast"
	"go/types"
)

var puberrCheck = &Check{
	Name: "puberr",
	Doc:  "errors from Publish/Store/Ingest call sites must not be silently discarded",
	Run:  runPuberr,
}

// pubErrNames are the delivery-path methods whose error return reports data
// loss. Dropping one silently is how a diagnosis pipeline develops holes
// nobody notices until the anomaly table is wrong. Insert/Append cover the
// durable DSOS ingest path (a dropped insert or WAL append error breaks the
// ack contract); Restart/Recover cover crash recovery, where a swallowed
// error leaves a shard silently empty. Ack/Nak/Fetch/AppendStream cover the
// durable-stream consumer protocol: a swallowed Ack error stalls the floor
// (redelivery storms), a swallowed Fetch error looks like an empty stream.
// InsertBatch/BeginAdd/BeginRemove/Cutover/Abort/Settle cover hash-shard
// placement and migration: a dropped Cutover error strands a migration
// half-done with the fence still up.
var pubErrNames = map[string]bool{
	"Publish": true, "PublishJSON": true, "PublishString": true,
	"Store": true, "Ingest": true,
	"Insert": true, "Append": true, "Restart": true, "Recover": true,
	"Ack": true, "Nak": true, "Fetch": true, "AppendStream": true,
	"InsertBatch": true, "BeginAdd": true, "BeginRemove": true,
	"Cutover": true, "Abort": true, "Settle": true,
}

// runPuberr flags bare expression statements calling a pubErrNames method
// whose (last) result is an error. An explicit `_ = x.Publish(m)` is
// accepted as a deliberate, visible discard; the bare call is not, because
// it is indistinguishable from a forgotten check.
func runPuberr(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !pubErrNames[sel.Sel.Name] {
				return true
			}
			if !p.callReturnsError(call) {
				return true
			}
			p.Reportf(call.Pos(),
				"handle the error (retry, count, or log it); for true fire-and-forget use `_ =` or //lint:allow puberr <reason>",
				"error from %s.%s discarded — a failed publish/store is silent data loss",
				types.ExprString(sel.X), sel.Sel.Name)
			return true
		})
	}
}

// callReturnsError reports whether the call's sole or last result is error.
// Without type information the call is not flagged (Bus.Publish returns a
// drop count, not an error; guessing by name alone would cry wolf).
func (p *Pass) callReturnsError(call *ast.CallExpr) bool {
	t := p.TypeOf(call)
	if t == nil {
		return false
	}
	switch rt := t.(type) {
	case *types.Tuple:
		if rt.Len() == 0 {
			return false
		}
		return isErrorType(rt.At(rt.Len() - 1).Type())
	default:
		return isErrorType(rt)
	}
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface) || t.String() == "error"
}
