package lint

import (
	"go/ast"
	"go/types"
)

var ackleakCheck = &Check{
	Name: "ackleak",
	Doc:  "deliveries returned by Consumer.Fetch must reach Ack/Nak/dead-letter (or escape) on every path",
	Run:  runAckleak,
}

// settleCallNames are the calls that settle a fetched delivery's fate.
// Term/DeadLetter are accepted for forward compatibility with explicit
// dead-letter APIs.
var settleCallNames = map[string]bool{
	"Ack": true, "Nak": true, "Term": true, "DeadLetter": true,
}

// runAckleak tracks every `ds, err := c.Fetch(n)` whose result is a
// slice of Delivery values. A fetched-but-never-settled batch is the
// silent failure mode of the at-least-once consumer contract: the
// messages sit inflight until the ack deadline, the floor stalls, and
// the stream redelivers — a retry storm with no error anywhere. The CFG
// walk requires every path from the Fetch to reach a settle call
// (Ack/Nak/Term/DeadLetter — on the consumer or via a helper taking the
// delivery or its Seq), or to hand the slice off (returned, stored,
// passed whole to another function). Paths guarded by `err != nil` or
// `len(ds) == 0` are vacuous and exempt.
func runAckleak(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				p.ackleakFunc(body)
			}
			return true
		})
	}
}

func (p *Pass) ackleakFunc(body *ast.BlockStmt) {
	type site struct {
		assign *ast.AssignStmt
		call   *ast.CallExpr
		ob     *obligation
	}
	var sites []site
	inspectSameFunc(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !p.isDeliveryFetch(call) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		ob := &obligation{acquire: as, obj: p.ObjectOf(id), name: id.Name}
		if len(as.Lhs) > 1 {
			if eid, ok := as.Lhs[1].(*ast.Ident); ok && eid.Name != "_" {
				ob.errObj = p.ObjectOf(eid)
				if ob.errObj == nil {
					// Keep name-based guard matching alive without type info.
					ob.errObj = types.NewVar(eid.Pos(), nil, eid.Name, nil)
				}
			}
		}
		sites = append(sites, site{assign: as, call: call, ob: ob})
		return true
	})
	if len(sites) == 0 {
		return
	}
	g := buildCFG(body)
	for _, s := range sites {
		blk, idx := findNode(g, s.assign)
		if blk == nil {
			continue
		}
		// derived tracks range/index variables bound from the fetched
		// slice along the walk, so `u.nak(d.Seq)` inside
		// `for _, d := range ds` counts as settling ds.
		derived := map[string]bool{}
		spec := &obligationSpec{}
		spec.isRelease = func(ob *obligation, call *ast.CallExpr) bool {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && settleCallNames[sel.Sel.Name] {
				return true
			}
			// A helper call taking a delivery (or its Seq) settles it:
			// the fate decision moved into the callee.
			for _, a := range call.Args {
				if derivedSettleArg(a, derived) {
					return true
				}
			}
			return false
		}
		spec.escapes = func(ob *obligation, n ast.Node) bool {
			// Record derivations before judging escapes so the range
			// header itself does not read as an escape. A loop over the
			// fetched slice whose body settles the per-delivery variable
			// settles the whole batch (including the zero-iteration case:
			// an empty slice has nothing to settle).
			if rh, ok := n.(*rangeHeader); ok {
				if usesObligation(p, rh.rng.X, ob) {
					if id, ok := rh.rng.Value.(*ast.Ident); ok && id.Name != "_" {
						derived[id.Name] = true
					}
					if id, ok := rh.rng.Key.(*ast.Ident); ok && id.Name != "_" {
						derived[id.Name] = true
					}
					if rangeBodySettles(p, ob, rh.rng.Body, derived) {
						return true
					}
				}
				return false
			}
			// d := ds[i] derives; recording it is not an escape.
			recordIndexDerivations(p, ob, n, derived)
			return valueEscapes(p, ob, n, func(c *ast.CallExpr) bool { return spec.isRelease(s.ob, c) })
		}
		leaks := walkObligation(g, blk, idx+1, s.ob, spec)
		if len(leaks) == 0 {
			continue
		}
		recv := types.ExprString(s.call.Fun.(*ast.SelectorExpr).X)
		p.Reportf(s.call.Pos(),
			"settle every delivery: Ack on success, Nak for redelivery, or hand the batch to a function that does",
			"%s.Fetch deliveries in %q are dropped without Ack/Nak on %d path(s) — they stay inflight until the ack deadline and redeliver",
			recv, s.ob.name, len(leaks))
	}
}

// rangeBodySettles reports whether a loop body settles the per-delivery
// variable: an Ack/Nak-family call, or any call taking the derived
// delivery (or its Seq) as an argument. Index derivations inside the
// body (`d := ds[i]`) are registered first so a settle through them
// counts.
func rangeBodySettles(p *Pass, ob *obligation, body *ast.BlockStmt, derived map[string]bool) bool {
	inspectSameFunc(body, func(n ast.Node) bool {
		recordIndexDerivations(p, ob, n, derived)
		return true
	})
	found := false
	inspectSameFunc(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && settleCallNames[sel.Sel.Name] {
			found = true
		}
		for _, a := range call.Args {
			if derivedSettleArg(a, derived) {
				found = true
			}
		}
		return !found
	})
	return found
}

// recordIndexDerivations registers `d := ds[i]`-style bindings from the
// fetched slice into derived.
func recordIndexDerivations(p *Pass, ob *obligation, n ast.Node, derived map[string]bool) {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return
	}
	for i, r := range as.Rhs {
		if ix, ok := r.(*ast.IndexExpr); ok && usesObligation(p, ix.X, ob) && i < len(as.Lhs) {
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				derived[id.Name] = true
			}
		}
	}
}

// derivedSettleArg reports whether arg is a derived delivery `d` or its
// sequence `d.Seq` — the forms that carry the settle decision. Other
// fields (d.Msg) are payload reads, not settlement.
func derivedSettleArg(arg ast.Expr, derived map[string]bool) bool {
	switch a := arg.(type) {
	case *ast.Ident:
		return derived[a.Name]
	case *ast.SelectorExpr:
		if id, ok := a.X.(*ast.Ident); ok && derived[id.Name] && a.Sel.Name == "Seq" {
			return true
		}
	}
	return false
}

// isDeliveryFetch matches x.Fetch(...) returning ([]Delivery, error) —
// by result type when type info is available, by method-name shape
// otherwise.
func (p *Pass) isDeliveryFetch(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Fetch" {
		return false
	}
	t := p.TypeOf(call)
	if t == nil {
		return true // no type info: name-shape fallback
	}
	tup, ok := t.(*types.Tuple)
	if !ok || tup.Len() != 2 {
		return false
	}
	sl, ok := tup.At(0).Type().(*types.Slice)
	if !ok {
		return false
	}
	elem := sl.Elem()
	named, ok := elem.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Delivery"
}
