package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages for analysis. One Loader shares a
// FileSet and a source importer across packages, so transitively imported
// packages are type-checked once.
type Loader struct {
	Fset *token.FileSet
	// IncludeTests also analyzes _test.go files (off by default: tests
	// legitimately sleep, poll wall clocks and drop errors).
	IncludeTests bool

	imp types.Importer
}

// NewLoader returns a Loader backed by the stdlib source importer, which
// resolves both standard-library and module-internal imports from source.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil),
	}
}

// ModulePath reads the module path from root/go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// skipDirs are directory names never descended into while discovering
// packages. testdata is the Go-tools convention for fixture trees — that is
// where dlc-lint's own known-bad fixtures live.
var skipDirs = map[string]bool{
	"testdata":  true,
	"vendor":    true,
	".git":      true,
	"results":   true,
	"dashboard": true,
}

// DiscoverDirs walks root and returns every directory containing buildable
// .go files, in sorted order.
func DiscoverDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (skipDirs[name] || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		seen[filepath.Dir(path)] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadTree loads every package under root (the module root).
func (l *Loader) LoadTree(root string) ([]*Package, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := DiscoverDirs(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(root, modPath, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the package in dir. The returned package
// is nil when the directory holds no buildable files. Type-check errors are
// soft: they are collected into Package.TypeErrors and analysis proceeds
// with whatever type information was recovered.
func (l *Loader) LoadDir(root, modPath, dir string) (*Package, error) {
	filter := func(fi fs.FileInfo) bool {
		if strings.HasSuffix(fi.Name(), "_test.go") {
			return l.IncludeTests
		}
		return true
	}
	astPkgs, err := parser.ParseDir(l.Fset, dir, filter, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("lint: parsing %s: %w", dir, err)
	}
	// A directory can hold at most a package and its external test package;
	// analyze the primary (non _test-suffixed) one, folding in the external
	// test files only when tests are included.
	var names []string
	for name := range astPkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	var fileNames []string
	for _, name := range names {
		if strings.HasSuffix(name, "_test") && !l.IncludeTests {
			continue
		}
		for fn := range astPkgs[name].Files {
			fileNames = append(fileNames, fn)
		}
	}
	if len(fileNames) == 0 {
		return nil, nil
	}
	sort.Strings(fileNames)
	for _, fn := range fileNames {
		for _, name := range names {
			if f, ok := astPkgs[name].Files[fn]; ok {
				files = append(files, f)
				break
			}
		}
	}

	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	pkgPath := modPath
	if rel != "." {
		pkgPath = modPath + "/" + rel
	}

	pkg := &Package{
		Dir:     dir,
		RelPath: rel,
		Fset:    l.Fset,
		Files:   files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns an error when any soft error occurred; partial type
	// information is still recorded in pkg.Info.
	tpkg, _ := conf.Check(pkgPath, l.Fset, files, pkg.Info)
	pkg.Types = tpkg

	if z, ok := zoneDirective(files); ok {
		pkg.Zone = z
	} else {
		pkg.Zone = ZoneFor(rel)
	}
	return pkg, nil
}
