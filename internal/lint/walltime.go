package lint

import (
	"go/ast"
	"sort"
)

// bannedTimeFuncs are the wall-clock entry points of package time. Reading
// the real clock inside the deterministic sim zone stamps events with
// host time instead of virtual time — exactly the silent measurement
// corruption the paper's absolute-timestamp pipeline exists to prevent.
// Pure constructors and arithmetic (time.Unix, time.Duration, time.Date)
// are fine: they compute, they don't observe.
var bannedTimeFuncs = map[string]string{
	"Now":       "thread the sim engine's virtual clock (Engine.Now) or take a now() func from the caller",
	"Since":     "compute against the virtual clock: engine.Now() - start",
	"Until":     "compute against the virtual clock",
	"Sleep":     "use the engine's virtual sleep (Proc.Sleep / Engine.After)",
	"After":     "use Engine.After to schedule in virtual time",
	"AfterFunc": "use Engine.After to schedule in virtual time",
	"Tick":      "use a virtual-time ticker driven by Engine.After",
	"NewTicker": "use a virtual-time ticker driven by Engine.After",
	"NewTimer":  "use Engine.After to schedule in virtual time",
}

var walltimeCheck = &Check{
	Name:  "walltime",
	Doc:   "no wall-clock reads (time.Now/Since/Sleep/timers) in the deterministic sim zone",
	Zones: []Zone{ZoneSim},
	Run:   runWalltime,
}

func runWalltime(p *Pass) {
	timeFuncs := make([]string, 0, len(bannedTimeFuncs))
	for name := range bannedTimeFuncs {
		timeFuncs = append(timeFuncs, name)
	}
	sort.Strings(timeFuncs)
	for _, file := range p.Files {
		f := file
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := p.IsPkgCall(f, call, "time", timeFuncs...)
			if !ok {
				return true
			}
			p.Reportf(call.Pos(), bannedTimeFuncs[name],
				"wall-clock call time.%s in deterministic sim zone", name)
			return true
		})
	}
}
