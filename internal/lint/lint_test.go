package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	root := repoRoot(t)
	modPath, err := ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", name)
	loader := NewLoader()
	pkg, err := loader.LoadDir(root, modPath, dir)
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s: no package loaded", name)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: type-check: %v", name, terr)
	}
	return pkg
}

var wantRe = regexp.MustCompile(`// want (\w+)`)

// wantedFindings parses the fixture's `// want <check>` markers into a set
// of "file.go:line:check" keys.
func wantedFindings(t *testing.T, dir string) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				want[fmt.Sprintf("%s:%d:%s", e.Name(), i+1, m[1])] = true
			}
		}
	}
	return want
}

// TestFixtures runs the whole suite over every golden fixture and compares
// the findings against the inline `// want <check>` markers. The clean
// fixture asserts zero findings; the others each force their check to fire
// and exercise suppression.
func TestFixtures(t *testing.T) {
	fixtures := []string{
		"walltime", "obsclock", "globalrand", "maporder", "lockheld",
		"puberr", "hotalloc", "poolleak", "ackleak", "goroleak",
		"deferloop", "clean",
	}
	for _, name := range fixtures {
		t.Run(name, func(t *testing.T) {
			pkg := loadFixture(t, name)
			findings := Run(pkg, Checks())
			got := map[string]bool{}
			for _, f := range findings {
				got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.File), f.Line, f.Check)] = true
			}
			want := wantedFindings(t, pkg.Dir)
			for k := range want {
				if !got[k] {
					t.Errorf("missing finding %s", k)
				}
			}
			for k := range got {
				if !want[k] {
					t.Errorf("unexpected finding %s", k)
				}
			}
			if name == "clean" && len(findings) != 0 {
				t.Errorf("clean fixture produced %d findings: %v", len(findings), findings)
			}
		})
	}
}

// TestFixtureZones asserts the //lint:zone directive and the path-based
// classifier both feed Package.Zone correctly.
func TestFixtureZones(t *testing.T) {
	if z := loadFixture(t, "walltime").Zone; z != ZoneSim {
		t.Errorf("walltime fixture zone = %v, want sim (forced by //lint:zone)", z)
	}
	if z := loadFixture(t, "puberr").Zone; z != ZoneReal {
		t.Errorf("puberr fixture zone = %v, want real (no directive, path outside sim zone)", z)
	}
}

// TestWalltimeZoneGate: the walltime check must not run outside the sim
// zone — the same file that fires under //lint:zone sim is silent as real.
func TestWalltimeZoneGate(t *testing.T) {
	pkg := loadFixture(t, "walltime")
	pkg.Zone = ZoneReal
	for _, f := range Run(pkg, Checks()) {
		if f.Check == "walltime" {
			t.Errorf("walltime fired in real zone: %v", f)
		}
	}
}

// TestObsclockZoneGate: obs.WallClock is legitimate in the real zone
// (daemons time telemetry in wall time); the check must stay silent there.
func TestObsclockZoneGate(t *testing.T) {
	pkg := loadFixture(t, "obsclock")
	pkg.Zone = ZoneReal
	for _, f := range Run(pkg, Checks()) {
		if f.Check == "obsclock" {
			t.Errorf("obsclock fired in real zone: %v", f)
		}
	}
}

func TestZoneFor(t *testing.T) {
	cases := map[string]Zone{
		"internal/sim":        ZoneSim,
		"internal/sim/sub":    ZoneSim,
		"internal/mpi":        ZoneSim,
		"internal/analysis":   ZoneSim,
		"internal/darshan":    ZoneSim,
		"internal/darshanlog": ZoneReal, // prefix of a sim path but a different package
		"internal/ldms":       ZoneReal,
		"internal/replay":     ZoneReal,
		"cmd/ldmsd":           ZoneReal,
		"examples/quickstart": ZoneReal,
		".":                   ZoneReal,
	}
	for rel, want := range cases {
		if got := ZoneFor(rel); got != want {
			t.Errorf("ZoneFor(%q) = %v, want %v", rel, got, want)
		}
	}
}

// TestRepoIsClean runs the suite over the real module tree: the
// determinism contract must hold on every commit. This doubles as an
// integration test of the loader against all 20+ packages.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root := repoRoot(t)
	loader := NewLoader()
	pkgs, err := loader.LoadTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages — discovery broken?", len(pkgs))
	}
	simSeen := false
	for _, pkg := range pkgs {
		if pkg.Zone == ZoneSim {
			simSeen = true
		}
		for _, f := range Run(pkg, Checks()) {
			t.Errorf("%v", f)
		}
	}
	if !simSeen {
		t.Error("no sim-zone package found — zone classification broken?")
	}
}

func TestFindingJSONAndString(t *testing.T) {
	f := Finding{File: "a/b.go", Line: 12, Col: 3, Check: "walltime", Message: "m", Hint: "h"}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var back Finding
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != f {
		t.Fatalf("round trip: %+v != %+v", back, f)
	}
	if got := f.String(); got != "a/b.go:12:3: walltime: m [fix: h]" {
		t.Fatalf("String() = %q", got)
	}
}

func TestCheckSuite(t *testing.T) {
	names := CheckNames()
	want := []string{
		"walltime", "obsclock", "globalrand", "maporder", "lockheld",
		"puberr", "hotalloc", "poolleak", "ackleak", "goroleak",
		"deferloop",
	}
	if len(names) != len(want) {
		t.Fatalf("suite = %v, want %v", names, want)
	}
	sort.Strings(names)
	sort.Strings(want)
	for i := range names {
		if names[i] != want[i] {
			t.Fatalf("suite = %v, want %v", CheckNames(), want)
		}
	}
	for _, c := range Checks() {
		if c.Doc == "" {
			t.Errorf("check %s has no doc", c.Name)
		}
	}
}

// TestAllowTable covers the suppression placement rules directly.
func TestAllowTable(t *testing.T) {
	tbl := allowTable{"f.go": {10: {"walltime": true}, 20: {"*": true}}}
	cases := []struct {
		line  int
		check string
		want  bool
	}{
		{10, "walltime", true},  // same line
		{11, "walltime", true},  // directive on the line above
		{12, "walltime", false}, // two lines down: out of scope
		{10, "puberr", false},   // different check
		{21, "puberr", true},    // wildcard
	}
	for _, c := range cases {
		if got := tbl.permits("f.go", c.line, c.check); got != c.want {
			t.Errorf("permits(line=%d, %s) = %v, want %v", c.line, c.check, got, c.want)
		}
	}
	if tbl.permits("other.go", 10, "walltime") {
		t.Error("suppression leaked across files")
	}
}
