// Package lint implements dlc-lint, the project's determinism & safety
// static-analysis suite. The paper's value proposition is trustworthy
// run-time diagnosis: every Darshan event carries an absolute timestamp and
// the analysis pipeline must reproduce the same tables and figures from the
// same run. That contract is easy to break silently — a stray time.Now in
// the simulator, a package-level math/rand, an unsorted map iteration that
// leaks Go's randomized map order into an output table. dlc-lint encodes
// the contract as machine-checked rules over go/ast + go/types (stdlib
// only, no external analysis framework).
//
// The module is split into two zones:
//
//   - the deterministic sim zone (internal/sim, mpi, simfs, cluster,
//     connector, darshan, event, streams, dsos, stats, analysis, harness), where
//     wall-clock reads are banned outright, and
//   - the real zone (internal/ldms TCP/resilient transport, faults'
//     tcpproxy, replay, webui, cmd/*, examples), which talks to actual
//     sockets and clocks and is exempt from the walltime check.
//
// Checks can be suppressed per line with
//
//	//lint:allow <check> <reason>
//
// placed on the offending line or the line directly above it. A file can
// force its package's zone (used by fixtures and by real-zone files living
// in otherwise-deterministic packages) with
//
//	//lint:zone sim|real
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Zone classifies a package with respect to the determinism contract.
type Zone int

const (
	// ZoneReal marks packages that intentionally touch wall clocks and
	// real sockets. Only the zone-independent checks run there.
	ZoneReal Zone = iota
	// ZoneSim marks the deterministic simulation zone: all virtual-time
	// code where wall-clock reads corrupt measurements silently.
	ZoneSim
)

func (z Zone) String() string {
	if z == ZoneSim {
		return "sim"
	}
	return "real"
}

// simZonePaths are the module-relative package paths (and their subtrees)
// that form the deterministic sim zone. internal/darshanlog is deliberately
// absent (it is pure but timestamps it decodes are data, not clock reads);
// matching is per path segment so internal/darshan does not capture it by
// prefix accident.
var simZonePaths = []string{
	"internal/sim",
	"internal/mpi",
	"internal/simfs",
	"internal/cluster",
	"internal/connector",
	"internal/darshan",
	"internal/event",
	"internal/streams",
	"internal/dsos",
	"internal/stats",
	"internal/analysis",
	"internal/harness",
	"internal/topo",
	"internal/scenario",
}

// realZonePaths document the explicit allowlist of wall-clock users. They
// are outside simZonePaths already, so the list is informational: ZoneFor
// returns ZoneReal for anything not in the sim zone.
var realZonePaths = []string{
	"internal/ldms",   // real TCP transport + resilient forwarder
	"internal/faults", // tcpproxy drives real sockets
	"internal/replay", // live capture replay runs in wall time (DXT re-execution is virtual-time but shares the package)
	"internal/webui",  // HTTP dashboard
	"cmd",             // all binaries talk to the real world
	"examples",
}

// ZoneFor classifies a module-relative package path ("internal/sim",
// "cmd/ldmsd", ...). Matching is by whole path segment, so
// "internal/darshan" covers "internal/darshan" and "internal/darshan/x"
// but not "internal/darshanlog".
func ZoneFor(relPath string) Zone {
	for _, p := range simZonePaths {
		if relPath == p || strings.HasPrefix(relPath, p+"/") {
			return ZoneSim
		}
	}
	return ZoneReal
}

// Finding is one reported violation.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
	Hint    string `json:"hint,omitempty"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Check, f.Message)
	if f.Hint != "" {
		s += " [fix: " + f.Hint + "]"
	}
	return s
}

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Dir     string // directory on disk
	RelPath string // module-relative import path ("internal/sim")
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package // may be nil if type-checking failed hard
	Info    *types.Info    // always non-nil; possibly partial
	Zone    Zone
	// TypeErrors collects soft type-check errors. Checks degrade to
	// syntactic heuristics when type information is missing.
	TypeErrors []error
}

// Pass is the per-package context handed to each check's Run function.
type Pass struct {
	*Package
	check  string
	report func(Finding)
}

// Reportf records a finding anchored at pos.
func (p *Pass) Reportf(pos token.Pos, hint, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Finding{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
		Hint:    hint,
	})
}

// TypeOf returns the type of e, or nil when type information is missing.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf resolves an identifier, or nil when type information is missing.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// IsPkgCall reports whether call is pkgPath.<one of names>(...), resolving
// the qualifier through type info when available and falling back to the
// file's import table otherwise.
func (p *Pass) IsPkgCall(file *ast.File, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	matched := false
	for _, n := range names {
		if sel.Sel.Name == n {
			matched = true
			break
		}
	}
	if !matched {
		return "", false
	}
	if obj := p.ObjectOf(id); obj != nil {
		pn, ok := obj.(*types.PkgName)
		if !ok || pn.Imported().Path() != pkgPath {
			return "", false
		}
		return sel.Sel.Name, true
	}
	// Syntactic fallback: the qualifier must be the local name of an
	// import of pkgPath in this file.
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path != pkgPath {
			continue
		}
		name := localImportName(imp, path)
		if name == id.Name {
			return sel.Sel.Name, true
		}
	}
	return "", false
}

func localImportName(imp *ast.ImportSpec, path string) string {
	if imp.Name != nil {
		return imp.Name.Name
	}
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Check is one analyzer in the suite.
type Check struct {
	Name string
	Doc  string
	// Zones restricts where the check runs; nil means all zones.
	Zones []Zone
	Run   func(*Pass)
}

func (c *Check) appliesTo(z Zone) bool {
	if len(c.Zones) == 0 {
		return true
	}
	for _, zz := range c.Zones {
		if zz == z {
			return true
		}
	}
	return false
}

// Checks returns the full suite in stable order: the seven original
// single-statement checks, then the CFG-backed lifecycle checks.
func Checks() []*Check {
	return []*Check{
		walltimeCheck,
		obsclockCheck,
		globalrandCheck,
		maporderCheck,
		lockheldCheck,
		puberrCheck,
		hotallocCheck,
		poolleakCheck,
		ackleakCheck,
		goroleakCheck,
		deferloopCheck,
	}
}

// CheckNames returns the names of every check in the suite.
func CheckNames() []string {
	var names []string
	for _, c := range Checks() {
		names = append(names, c.Name)
	}
	return names
}

// CheckTiming is the wall time one check spent across the whole run,
// surfaced by `dlc-lint -json` so a pathological fixture or a CFG blowup
// shows up as a number instead of a mysteriously slow CI job.
type CheckTiming struct {
	Check  string        `json:"check"`
	Elapse time.Duration `json:"elapsed_ns"`
}

// Run executes the given checks over pkg and returns surviving findings
// (suppressions applied), sorted by position then check name.
func Run(pkg *Package, checks []*Check) []Finding {
	f, _ := RunTimed(pkg, checks)
	return f
}

// RunTimed is Run plus per-check wall time, in suite order.
func RunTimed(pkg *Package, checks []*Check) ([]Finding, []CheckTiming) {
	allow := collectAllows(pkg)
	var findings []Finding
	var timings []CheckTiming
	for _, c := range checks {
		if !c.appliesTo(pkg.Zone) {
			continue
		}
		pass := &Pass{Package: pkg, check: c.Name}
		pass.report = func(f Finding) {
			if allow.permits(f.File, f.Line, f.Check) {
				return
			}
			findings = append(findings, f)
		}
		start := time.Now() //lint:allow walltime timing instrumentation, not sim state
		c.Run(pass)
		timings = append(timings, CheckTiming{Check: c.Name, Elapse: time.Since(start)}) //lint:allow walltime timing instrumentation, not sim state
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return findings, timings
}

// allowTable maps file -> line -> set of allowed check names ("*" = all).
type allowTable map[string]map[int]map[string]bool

func (t allowTable) permits(file string, line int, check string) bool {
	lines, ok := t[file]
	if !ok {
		return false
	}
	for _, ln := range []int{line, line - 1} {
		if set, ok := lines[ln]; ok && (set[check] || set["*"]) {
			return true
		}
	}
	return false
}

const (
	allowPrefix = "//lint:allow "
	zonePrefix  = "//lint:zone "
)

// collectAllows scans every comment in the package for //lint:allow
// directives. A directive covers its own line and the line directly below
// it, so both trailing and leading placements work:
//
//	time.Sleep(d) //lint:allow walltime warm-up outside measurement
//
//	//lint:allow puberr best-effort fan-out, drops are counted
//	fwd.Publish(m)
//
// A directive without a reason is ignored (the reason is part of the
// contract: reviewers should see why the rule does not apply).
func collectAllows(pkg *Package) allowTable {
	t := allowTable{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				if len(fields) < 2 {
					continue // no reason given: directive is inert
				}
				pos := pkg.Fset.Position(c.Pos())
				lines, ok := t[pos.Filename]
				if !ok {
					lines = map[int]map[string]bool{}
					t[pos.Filename] = lines
				}
				set, ok := lines[pos.Line]
				if !ok {
					set = map[string]bool{}
					lines[pos.Line] = set
				}
				set[fields[0]] = true
			}
		}
	}
	return t
}

// zoneDirective scans a package's comments for a //lint:zone directive and
// returns the forced zone, if any.
func zoneDirective(files []*ast.File) (Zone, bool) {
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, zonePrefix) {
					continue
				}
				switch strings.TrimSpace(strings.TrimPrefix(c.Text, zonePrefix)) {
				case "sim":
					return ZoneSim, true
				case "real":
					return ZoneReal, true
				}
			}
		}
	}
	return ZoneReal, false
}
