package lint

// obligation.go — a forward must-analysis over the function CFG for
// "obligation" values: something acquired (a pooled batch checked out, a
// lock taken, a batch of deliveries fetched) that must be released (Put,
// Unlock, Ack/Nak) on every path to the function exit, unless ownership
// escapes (the value is returned, stored into a struct field, or handed
// to another function). The walker enumerates CFG paths from the acquire
// site and reports every exit reachable with the obligation still open.
//
// Design choices, tuned against this module's real code:
//
//   - A deferred release (directly, or inside a deferred func literal)
//     discharges every exit downstream of the defer statement — defers
//     run on return and on panic alike.
//   - Escapes discharge: a linter cannot see across the call boundary,
//     so transferring the value out is treated as transferring the
//     obligation with it. "Borrowing" calls (io.Write/Read-shaped names
//     and the append/len/cap/copy builtins) are the exception: they use
//     the value without taking it, so the obligation stays open across
//     them — exactly the WriteBatchFrame shape, where the pooled buffer
//     is written to the socket and must still be Put.
//   - Narrow branch sensitivity: when the acquire also binds an error
//     (`ds, err := c.Fetch(n)`), a branch guarded by `err != nil`,
//     `x == nil` or `len(x) == 0` (or an ||-chain of those) holds no
//     value to settle, so the true edge discharges vacuously. Without
//     this every `if err != nil { return }` after a Fetch would be a
//     false positive.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// obligation is one acquired value being tracked.
type obligation struct {
	acquire ast.Node     // the acquiring statement, for reporting
	obj     types.Object // variable bound to the value (nil for recv-identity)
	name    string       // variable name fallback when type info is missing
	errObj  types.Object // error bound by the same assignment, if any
	recv    string       // printed receiver identity (lock obligations)
}

// obligationSpec parameterizes the walker per check.
type obligationSpec struct {
	// isRelease reports whether call settles the obligation.
	isRelease func(ob *obligation, call *ast.CallExpr) bool
	// escapes reports whether node transfers the value's ownership.
	// May be nil (lock obligations never escape).
	escapes func(ob *obligation, n ast.Node) bool
	// onOpen, when set, observes every node traversed while the
	// obligation is open (lockheld uses it for blocked-under-lock).
	onOpen func(n ast.Node)
}

// leak is one path on which the obligation reached the exit unreleased.
type leak struct {
	at ast.Node // the return/terminating statement, or the acquire itself
}

// walkObligation enumerates paths from the acquire site and returns the
// leaking exits, deduplicated by position.
func walkObligation(g *funcCFG, start *cfgBlock, startIdx int, ob *obligation, spec *obligationSpec) []leak {
	type item struct {
		b *cfgBlock
		i int
	}
	var leaks []leak
	seenLeak := map[token.Pos]bool{}
	visited := map[*cfgBlock]bool{}
	work := []item{{start, startIdx}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		discharged := false
		vacuousTrue := false
		for i := it.i; i < len(it.b.nodes); i++ {
			n := it.b.nodes[i]
			if nodeDischarges(n, ob, spec) {
				discharged = true
				break
			}
			if spec.onOpen != nil {
				spec.onOpen(n)
			}
		}
		if discharged {
			continue
		}
		if it.b.cond != nil && isVacuityGuard(it.b.cond, ob) {
			vacuousTrue = true
		}
		for _, succ := range it.b.succs {
			if vacuousTrue && succ == it.b.onTrue && succ != it.b.onFalse {
				continue // guard says the value is absent on this edge
			}
			if succ == g.exit {
				at := it.b.term
				if at == nil {
					at = ob.acquire
				}
				if !seenLeak[at.Pos()] {
					seenLeak[at.Pos()] = true
					leaks = append(leaks, leak{at: at})
				}
				continue
			}
			if !visited[succ] {
				visited[succ] = true
				work = append(work, item{succ, 0})
			}
		}
	}
	return leaks
}

// nodeDischarges reports whether executing n settles the obligation:
// a release call, a deferred release, or an ownership escape.
func nodeDischarges(n ast.Node, ob *obligation, spec *obligationSpec) bool {
	if def, ok := n.(*ast.DeferStmt); ok {
		return deferReleases(def, ob, spec)
	}
	if containsRelease(n, ob, spec) {
		return true
	}
	return spec.escapes != nil && spec.escapes(ob, n)
}

// deferReleases reports whether a defer statement releases the
// obligation, either directly (`defer mu.Unlock()`) or inside a deferred
// closure (`defer func() { pool.Put(b) }()`).
func deferReleases(def *ast.DeferStmt, ob *obligation, spec *obligationSpec) bool {
	if spec.isRelease(ob, def.Call) {
		return true
	}
	if lit, ok := def.Call.Fun.(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok && spec.isRelease(ob, call) {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}

// scanTarget maps CFG marker nodes to the real AST subtree a scanner may
// walk: a rangeHeader scans only its range expression (the body has its
// own blocks).
func scanTarget(n ast.Node) ast.Node {
	if rh, ok := n.(*rangeHeader); ok {
		return rh.rng.X
	}
	return n
}

// containsRelease scans n (without entering nested function literals —
// a closure body is a separate execution, not this path) for a release
// call.
func containsRelease(n ast.Node, ob *obligation, spec *obligationSpec) bool {
	n = scanTarget(n)
	found := false
	inspectSameFunc(n, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok && spec.isRelease(ob, call) {
			found = true
		}
		return !found
	})
	return found
}

// usesObligation reports whether the expression tree references the
// obligation's variable (by resolved object when available, by name
// otherwise).
func usesObligation(p *Pass, n ast.Node, ob *obligation) bool {
	if n == nil || (ob.obj == nil && ob.name == "") {
		return false
	}
	n = scanTarget(n)
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return !found
		}
		if ob.obj != nil {
			if p.ObjectOf(id) == ob.obj {
				found = true
			}
		} else if id.Name == ob.name {
			found = true
		}
		return !found
	})
	return found
}

// borrowCallNames are selector names that use a value without taking
// ownership of it: passing an obligation to them does NOT discharge it.
var borrowCallNames = map[string]bool{
	"Write": true, "Read": true, "WriteString": true, "WriteByte": true,
	"ReadFrom": true, "WriteTo": true, "Flush": true,
}

// borrowBuiltins are builtins that never take ownership.
var borrowBuiltins = map[string]bool{
	"append": true, "len": true, "cap": true, "copy": true, "delete": true,
}

// valueEscapes is the shared ownership-escape rule for value obligations
// (pooled buffers, fetched batches): the obligation is considered handed
// off when the value is returned, stored into a field/map/slice/global,
// sent on a channel, captured by a (non-deferred) closure, or passed as
// an argument to a non-borrowing call.
func valueEscapes(p *Pass, ob *obligation, n ast.Node, isRelease func(*ast.CallExpr) bool) bool {
	n = scanTarget(n)
	escaped := false
	inspectSameFunc(n, func(x ast.Node) bool {
		if escaped {
			return false
		}
		switch e := x.(type) {
		case *ast.ReturnStmt:
			for _, r := range e.Results {
				if usesObligation(p, r, ob) {
					escaped = true
				}
			}
		case *ast.AssignStmt:
			// Storing the value through a selector/index/star lvalue
			// (s.f = b, m[k] = b, *p = b) transfers ownership.
			rhsUses := false
			for _, r := range e.Rhs {
				if usesObligation(p, r, ob) {
					rhsUses = true
				}
			}
			if rhsUses {
				for _, l := range e.Lhs {
					switch l.(type) {
					case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
						escaped = true
					}
				}
			}
		case *ast.SendStmt:
			if usesObligation(p, e.Value, ob) {
				escaped = true
			}
		case *ast.GoStmt:
			if usesObligation(p, e.Call, ob) {
				escaped = true
			}
		case *ast.FuncLit:
			// A closure capturing the value may release it later.
			if usesObligation(p, e.Body, ob) {
				escaped = true
			}
			return false // separate scan unit either way
		case *ast.CompositeLit:
			if usesObligation(p, e, ob) {
				escaped = true
			}
			return false
		case *ast.UnaryExpr:
			if e.Op == token.AND && usesObligation(p, e.X, ob) {
				escaped = true
			}
		case *ast.CallExpr:
			if isRelease != nil && isRelease(e) {
				return true // the release itself is not an escape
			}
			if isBorrowCall(e) {
				return true // borrowed, not taken: keep scanning args
			}
			for _, a := range e.Args {
				if usesObligation(p, a, ob) {
					escaped = true
				}
			}
		}
		return !escaped
	})
	return escaped
}

func isBorrowCall(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return borrowBuiltins[fn.Name]
	case *ast.SelectorExpr:
		return borrowCallNames[fn.Sel.Name]
	}
	return false
}

// isVacuityGuard reports whether cond tests that the obligation's value
// is absent — `err != nil`, `x == nil`, `len(x) == 0`, or an ||-chain of
// those — so the true branch vacuously discharges.
func isVacuityGuard(cond ast.Expr, ob *obligation) bool {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return isVacuityGuard(e.X, ob)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR:
			return isVacuityGuard(e.X, ob) || isVacuityGuard(e.Y, ob)
		case token.NEQ:
			// err != nil
			return identNamed(e.X, objName(ob.errObj, "")) && isNilIdent(e.Y)
		case token.EQL:
			// x == nil  |  len(x) == 0
			valName := objName(ob.obj, ob.name)
			if identNamed(e.X, valName) && isNilIdent(e.Y) {
				return true
			}
			if call, ok := e.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "len" && len(call.Args) == 1 {
					if identNamed(call.Args[0], valName) && isZeroLit(e.Y) {
						return true
					}
				}
			}
		}
	}
	return false
}

// objName resolves the name an obligation's variable goes by, preferring
// the type-checked object. Guard matching is by name: it is only
// consulted for idents in the same function as the obligation binding,
// where a collision would require deliberate shadowing.
func objName(obj types.Object, fallback string) string {
	if obj != nil {
		return obj.Name()
	}
	return fallback
}

func identNamed(e ast.Expr, name string) bool {
	if name == "" {
		return false
	}
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}

// findNode locates the block and node index of the statement containing
// pos (the acquire site) so the walk can start just past it.
func findNode(g *funcCFG, target ast.Node) (*cfgBlock, int) {
	for _, blk := range g.blocks {
		for i, n := range blk.nodes {
			if n == target || within(n, target) {
				return blk, i
			}
		}
	}
	return nil, 0
}

// within reports whether target's position range sits inside n's.
func within(n, target ast.Node) bool {
	return n.Pos() <= target.Pos() && target.End() <= n.End()
}
