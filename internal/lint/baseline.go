package lint

// baseline.go — the persisted known-findings file behind `dlc-lint
// -baseline`. A baseline lets a new check land with pre-existing debt
// recorded instead of either blocking the merge or being watered down:
// the recorded findings are suppressed, anything NEW still fails, and an
// entry whose findings were actually fixed goes "stale" and fails the
// run until the baseline is regenerated (so the debt ledger can only
// shrink deliberately, never silently).

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// BaselineEntry records one class of known findings: a (file, check)
// pair and how many findings of that class are grandfathered.
type BaselineEntry struct {
	File  string `json:"file"` // module-relative, slash-separated
	Check string `json:"check"`
	Count int    `json:"count"`
}

func (e BaselineEntry) key() string { return e.File + "\x00" + e.Check }

// Baseline is the on-disk known-findings document.
type Baseline struct {
	Comment string          `json:"comment,omitempty"`
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

// NewBaseline aggregates findings into a baseline document, with paths
// relativized against root.
func NewBaseline(root string, findings []Finding) *Baseline {
	counts := map[BaselineEntry]int{}
	for _, f := range findings {
		e := BaselineEntry{File: relPath(root, f.File), Check: f.Check}
		counts[e]++
	}
	b := &Baseline{
		Comment: "known dlc-lint findings; regenerate with dlc-lint -write-baseline after paying debt",
		Entries: []BaselineEntry{},
	}
	for e, n := range counts {
		e.Count = n
		b.Entries = append(b.Entries, e)
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		return a.Check < c.Check
	})
	return b
}

// Write persists the baseline as stable, diff-friendly JSON.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Apply splits findings against the baseline: fresh findings (not
// covered by any entry — these should fail the run) and stale entries
// (recorded debt that no longer exists — the baseline must be
// regenerated so the ledger stays honest). Suppressed reports how many
// findings the baseline absorbed.
func (b *Baseline) Apply(root string, findings []Finding) (fresh []Finding, stale []BaselineEntry, suppressed int) {
	budget := map[string]int{}
	for _, e := range b.Entries {
		budget[e.key()] += e.Count
	}
	seen := map[string]int{}
	for _, f := range findings {
		k := BaselineEntry{File: relPath(root, f.File), Check: f.Check}.key()
		seen[k]++
		if seen[k] <= budget[k] {
			suppressed++
			continue
		}
		fresh = append(fresh, f)
	}
	for _, e := range b.Entries {
		if seen[e.key()] < e.Count {
			stale = append(stale, e)
		}
	}
	return fresh, stale, suppressed
}

// relPath relativizes file against root into the baseline's canonical
// slash-separated form; files outside root keep their absolute path.
func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
