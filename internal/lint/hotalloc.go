package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

var hotallocCheck = &Check{
	Name: "hotalloc",
	Doc:  "no fmt.Sprint* or per-element interface boxing ([]any composite literals) on the per-event hot path (connector, event, jsonmsg, ldms, dsos)",
	Run:  runHotalloc,
}

// hotPathPaths are the packages on the per-event fast path: every Darshan
// event the connector emits passes through them, so a fmt.Sprintf there
// costs an interface boxing plus a string allocation *per event* — the
// exact overhead the paper measures as the sprintf-encoder ablation
// (Table IIc) and the lazy message plane exists to avoid. Matching is by
// whole path segment, like ZoneFor. internal/dsos joined the list with
// the arena-pooled wire path: ingest builds store rows per event, so
// boxing regressions there are exactly as hot as codec ones.
var hotPathPaths = []string{
	"internal/connector",
	"internal/event",
	"internal/jsonmsg",
	"internal/ldms",
	"internal/dsos",
}

// sprintNames are the fmt formatting calls that allocate their result
// per call; Sprintf's siblings count too.
var sprintNames = []string{"Sprintf", "Sprint", "Sprintln"}

// hotPathDirective is how a package outside hotPathPaths (fixtures) forces
// hot-path treatment.
const hotPathDirective = "//lint:hotpath"

// coldMethodNames are formatting methods that exist *for* human-readable
// output and run off the hot path (debug strings, flag help, error text).
// Sprintf inside them is idiomatic, not a leak.
var coldMethodNames = map[string]bool{
	"String": true,
	"Name":   true,
	"Error":  true,
}

func isHotPath(pkg *Package) bool {
	for _, p := range hotPathPaths {
		if pkg.RelPath == p || strings.HasPrefix(pkg.RelPath, p+"/") {
			return true
		}
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if c.Text == hotPathDirective {
					return true
				}
			}
		}
	}
	return false
}

// funcAllowsHotalloc reports whether the function's doc comment carries a
// //lint:allow hotalloc directive (with a reason). The per-line allow
// table cannot express "this whole function is the deliberate ablation" —
// the sprintf encoder is 20+ flagged lines that are the point of the
// experiment — so hotalloc honors a single function-level suppression on
// the declaration's doc comment.
func funcAllowsHotalloc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, allowPrefix)
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) >= 2 && fields[0] == "hotalloc" {
			return true
		}
	}
	return false
}

// isAnySliceLit reports whether cl is a non-empty composite literal whose
// type's underlying is []any (sos.Object, sos.Key and friends): each
// element is boxed into an interface at construction, so one literal on
// the hot path is len(Elts) allocations per event. The arena/cached-box
// builders (dsos.RowArena, Container.takeKey) exist to avoid this.
func (p *Pass) isAnySliceLit(cl *ast.CompositeLit) bool {
	if len(cl.Elts) == 0 {
		return false
	}
	t := p.TypeOf(cl)
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	iface, ok := sl.Elem().Underlying().(*types.Interface)
	return ok && iface.NumMethods() == 0
}

// runHotalloc flags fmt.Sprint* call sites and boxing []any composite
// literals in hot-path packages, skipping cold formatting methods
// (String/Name/Error) and functions whose doc comment carries
// //lint:allow hotalloc <reason>.
func runHotalloc(p *Pass) {
	if !isHotPath(p.Package) {
		return
	}
	for _, file := range p.Files {
		f := file
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if isFunc && (coldMethodNames[fd.Name.Name] || funcAllowsHotalloc(fd)) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.CallExpr:
					for _, name := range sprintNames {
						if _, ok := p.IsPkgCall(f, v, "fmt", name); ok {
							p.Reportf(v.Pos(),
								"build with append/strconv or a pooled buffer; //lint:allow hotalloc <reason> for a deliberate ablation",
								"fmt.%s on the per-event hot path allocates per call", name)
							break
						}
					}
				case *ast.CompositeLit:
					if p.isAnySliceLit(v) {
						p.Reportf(v.Pos(),
							"build rows through an arena/cached-box builder (dsos.RowArena) instead of a boxing literal; //lint:allow hotalloc <reason> if this site is deliberately cold",
							"[]any composite literal on the per-event hot path boxes every element")
					}
				}
				return true
			})
		}
	}
}
