package lint

import (
	"go/ast"
	"strings"
)

var hotallocCheck = &Check{
	Name: "hotalloc",
	Doc:  "no fmt.Sprintf on the per-event hot path (connector, event, jsonmsg, ldms)",
	Run:  runHotalloc,
}

// hotPathPaths are the packages on the per-event fast path: every Darshan
// event the connector emits passes through them, so a fmt.Sprintf there
// costs an interface boxing plus a string allocation *per event* — the
// exact overhead the paper measures as the sprintf-encoder ablation
// (Table IIc) and the lazy message plane exists to avoid. Matching is by
// whole path segment, like ZoneFor.
var hotPathPaths = []string{
	"internal/connector",
	"internal/event",
	"internal/jsonmsg",
	"internal/ldms",
}

// hotPathDirective is how a package outside hotPathPaths (fixtures) forces
// hot-path treatment.
const hotPathDirective = "//lint:hotpath"

// coldMethodNames are formatting methods that exist *for* human-readable
// output and run off the hot path (debug strings, flag help, error text).
// Sprintf inside them is idiomatic, not a leak.
var coldMethodNames = map[string]bool{
	"String": true,
	"Name":   true,
	"Error":  true,
}

func isHotPath(pkg *Package) bool {
	for _, p := range hotPathPaths {
		if pkg.RelPath == p || strings.HasPrefix(pkg.RelPath, p+"/") {
			return true
		}
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if c.Text == hotPathDirective {
					return true
				}
			}
		}
	}
	return false
}

// funcAllowsHotalloc reports whether the function's doc comment carries a
// //lint:allow hotalloc directive (with a reason). The per-line allow
// table cannot express "this whole function is the deliberate ablation" —
// the sprintf encoder is 20+ flagged lines that are the point of the
// experiment — so hotalloc honors a single function-level suppression on
// the declaration's doc comment.
func funcAllowsHotalloc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, allowPrefix)
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) >= 2 && fields[0] == "hotalloc" {
			return true
		}
	}
	return false
}

// runHotalloc flags fmt.Sprintf call sites in hot-path packages, skipping
// cold formatting methods (String/Name/Error) and functions whose doc
// comment carries //lint:allow hotalloc <reason>.
func runHotalloc(p *Pass) {
	if !isHotPath(p.Package) {
		return
	}
	for _, file := range p.Files {
		f := file
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if isFunc && (coldMethodNames[fd.Name.Name] || funcAllowsHotalloc(fd)) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, ok := p.IsPkgCall(f, call, "fmt", "Sprintf"); !ok {
					return true
				}
				p.Reportf(call.Pos(),
					"build with append/strconv or a pooled buffer; //lint:allow hotalloc <reason> for a deliberate ablation",
					"fmt.Sprintf on the per-event hot path allocates per call")
				return true
			})
		}
	}
}
