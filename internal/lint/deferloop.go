package lint

import (
	"go/ast"
)

var deferloopCheck = &Check{
	Name: "deferloop",
	Doc:  "defer of Unlock/RUnlock/Put inside a loop body runs at function exit, not per iteration",
	Run:  runDeferloop,
}

// deferredReleaseNames are the release calls whose defer-in-loop is the
// classic unbounded-obligation bug: the deferred Unlock/Put does not run
// until the *function* returns, so iteration N+1 deadlocks on the lock
// iteration N still holds, or the pool starves while every checked-out
// buffer waits on the call stack.
var deferredReleaseNames = map[string]bool{
	"Unlock": true, "RUnlock": true, "Put": true,
}

func runDeferloop(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var loopBody *ast.BlockStmt
			switch st := n.(type) {
			case *ast.ForStmt:
				loopBody = st.Body
			case *ast.RangeStmt:
				loopBody = st.Body
			default:
				return true
			}
			p.deferloopBody(loopBody)
			return true
		})
	}
}

// deferloopBody scans one loop body for deferred release calls. Nested
// function literals are their own functions — a defer there runs when
// the literal returns, once per iteration, which is fine — and nested
// loops are visited by the outer Inspect, so both are skipped here.
func (p *Pass) deferloopBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.DeferStmt:
			sel, ok := st.Call.Fun.(*ast.SelectorExpr)
			if !ok || !deferredReleaseNames[sel.Sel.Name] {
				return true
			}
			p.Reportf(st.Pos(),
				"release at the end of the iteration (call it directly, or wrap the iteration in a func so the defer scopes to it)",
				"defer %s.%s inside a loop runs at function exit, not per iteration — the obligation accumulates across iterations",
				exprString(sel.X), sel.Sel.Name)
		}
		return true
	})
}

// exprString renders short receiver expressions for messages.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.ParenExpr:
		return "(" + exprString(v.X) + ")"
	case *ast.UnaryExpr:
		return v.Op.String() + exprString(v.X)
	}
	return "?"
}
