package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var lockheldCheck = &Check{
	Name: "lockheld",
	Doc:  "every Lock needs an Unlock on all paths, and no blocking sim primitive may run under a held lock",
	Run:  runLockheld,
}

// Blocking virtual-time primitives. Parking a goroutine inside the DES
// while holding a mutex stalls every other process that touches the lock —
// in the simulator that is not slowness, it is deadlock, because virtual
// time only advances when runnable processes yield.
var blockingPrimNames = map[string]bool{
	"Wait": true, "Recv": true, "Acquire": true, "Use": true, "Sleep": true,
}

// simPrimitiveTypeNames lets fixture packages (and future sim-like types)
// participate without living under internal/sim.
var simPrimitiveTypeNames = map[string]bool{
	"Proc": true, "Engine": true, "Barrier": true, "Mailbox": true,
	"Resource": true, "WaitGroup": true, "Comm": true,
}

func runLockheld(p *Pass) {
	for _, file := range p.Files {
		f := file
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				p.lockheldFunc(body)
			}
			return true
		})
	}
}

type lockSite struct {
	stmt *ast.ExprStmt // the statement holding the Lock call
	call *ast.CallExpr
	recv string // printed receiver expression, e.g. "s.mu"
	read bool   // RLock vs Lock
}

func (p *Pass) lockheldFunc(body *ast.BlockStmt) {
	var locks []lockSite
	inspectSameFunc(body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, read, ok := p.asLockCall(call)
		if !ok {
			return true
		}
		locks = append(locks, lockSite{stmt: es, call: call, recv: recv, read: read})
		return true
	})
	if len(locks) == 0 {
		return
	}
	g := buildCFG(body)
	for _, l := range locks {
		p.checkLock(g, body, l)
	}
}

// asLockCall matches x.Lock() / x.RLock() where x's type (when known) has a
// matching unlock method in its method set.
func (p *Pass) asLockCall(call *ast.CallExpr) (recv string, read, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock":
		read = false
	case "RLock":
		read = true
	default:
		return "", false, false
	}
	if t := p.TypeOf(sel.X); t != nil && !hasMethod(t, unlockName(read)) {
		return "", false, false
	}
	return types.ExprString(sel.X), read, true
}

func unlockName(read bool) string {
	if read {
		return "RUnlock"
	}
	return "Unlock"
}

func hasMethod(t types.Type, name string) bool {
	for _, tt := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(tt)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == name {
				return true
			}
		}
	}
	return false
}

// checkLock walks the CFG from one Lock call with the unlock as the
// obligation's release. Report policy, preserved from the pre-CFG
// heuristic so fixtures and suppressions stay stable:
//
//   - no unlock anywhere downstream → one finding at the Lock;
//   - unlocks exist but a path leaks → one finding per leaking return;
//   - a blocking sim primitive while the lock is open → finding at the
//     blocking call (observed via onOpen, i.e. precisely on held paths,
//     where the old heuristic used textual Lock..firstUnlock bounds).
func (p *Pass) checkLock(g *funcCFG, funcBody *ast.BlockStmt, l lockSite) {
	want := unlockName(l.read)

	// A deferred unlock anywhere in the function covers every path.
	if p.hasDeferredUnlock(funcBody, l.recv, want) {
		return
	}

	ob := &obligation{acquire: l.call, recv: l.recv}
	seenBlocking := map[token.Pos]bool{}
	spec := &obligationSpec{
		isRelease: func(_ *obligation, call *ast.CallExpr) bool {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			return ok && sel.Sel.Name == want && types.ExprString(sel.X) == l.recv
		},
		onOpen: func(n ast.Node) {
			inspectSameFunc(scanTarget(n), func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !blockingPrimNames[sel.Sel.Name] || !p.isSimBlockingRecv(sel.X) {
					return true
				}
				if seenBlocking[call.Pos()] {
					return true
				}
				seenBlocking[call.Pos()] = true
				p.Reportf(call.Pos(),
					"release "+l.recv+" before blocking in virtual time; a parked holder deadlocks the event loop",
					"blocking sim primitive %s.%s called while %s is held",
					types.ExprString(sel.X), sel.Sel.Name, l.recv)
				return true
			})
		},
	}
	blk, idx := findNode(g, l.stmt)
	if blk == nil {
		return
	}
	leaks := walkObligation(g, blk, idx+1, ob, spec)
	if len(leaks) == 0 {
		return
	}
	hasUnlock := false
	inspectSameFunc(funcBody, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && call.Pos() > l.call.Pos() && spec.isRelease(ob, call) {
			hasUnlock = true
		}
		return !hasUnlock
	})
	if !hasUnlock {
		p.Reportf(l.call.Pos(),
			"add `defer "+l.recv+"."+want+"()` immediately after the Lock",
			"%s.%s with no matching %s on any path", l.recv, lockName(l.read), want)
		return
	}
	for _, lk := range leaks {
		if ret, ok := lk.at.(*ast.ReturnStmt); ok {
			p.Reportf(ret.Pos(),
				"unlock before returning, or hoist a `defer "+l.recv+"."+want+"()`",
				"early return leaves %s locked", l.recv)
			continue
		}
		p.Reportf(lk.at.Pos(),
			"unlock on this path, or hoist a `defer "+l.recv+"."+want+"()`",
			"path leaves %s locked at function exit", l.recv)
	}
}

func lockName(read bool) string {
	if read {
		return "RLock"
	}
	return "Lock"
}

func (p *Pass) hasDeferredUnlock(funcBody *ast.BlockStmt, recv, want string) bool {
	found := false
	inspectSameFunc(funcBody, func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		if sel, ok := def.Call.Fun.(*ast.SelectorExpr); ok &&
			sel.Sel.Name == want && types.ExprString(sel.X) == recv {
			found = true
		}
		return !found
	})
	return found
}

// isSimBlockingRecv reports whether e's type is a virtual-time primitive:
// declared under internal/sim or internal/mpi, or named like one (fixture
// escape hatch). sync.Cond and friends stay exempt.
func (p *Pass) isSimBlockingRecv(e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if path == "sync" || path == "time" {
		return false
	}
	if strings.Contains(path, "internal/sim") || strings.Contains(path, "internal/mpi") {
		return true
	}
	return simPrimitiveTypeNames[obj.Name()]
}
