package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

var lockheldCheck = &Check{
	Name: "lockheld",
	Doc:  "every Lock needs an Unlock on all paths, and no blocking sim primitive may run under a held lock",
	Run:  runLockheld,
}

// Blocking virtual-time primitives. Parking a goroutine inside the DES
// while holding a mutex stalls every other process that touches the lock —
// in the simulator that is not slowness, it is deadlock, because virtual
// time only advances when runnable processes yield.
var blockingPrimNames = map[string]bool{
	"Wait": true, "Recv": true, "Acquire": true, "Use": true, "Sleep": true,
}

// simPrimitiveTypeNames lets fixture packages (and future sim-like types)
// participate without living under internal/sim.
var simPrimitiveTypeNames = map[string]bool{
	"Proc": true, "Engine": true, "Barrier": true, "Mailbox": true,
	"Resource": true, "WaitGroup": true, "Comm": true,
}

func runLockheld(p *Pass) {
	for _, file := range p.Files {
		f := file
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				p.lockheldFunc(body)
			}
			return true
		})
	}
}

type lockSite struct {
	call  *ast.CallExpr
	recv  string // printed receiver expression, e.g. "s.mu"
	read  bool   // RLock vs Lock
	block *ast.BlockStmt
	index int // statement index within block
}

func (p *Pass) lockheldFunc(body *ast.BlockStmt) {
	var locks []lockSite
	inspectSameFunc(body, func(n ast.Node) bool {
		blk, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, st := range blk.List {
			es, ok := st.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			recv, read, ok := p.asLockCall(call)
			if !ok {
				continue
			}
			locks = append(locks, lockSite{call: call, recv: recv, read: read, block: blk, index: i})
		}
		return true
	})
	for _, l := range locks {
		p.checkLock(body, l)
	}
}

// asLockCall matches x.Lock() / x.RLock() where x's type (when known) has a
// matching unlock method in its method set.
func (p *Pass) asLockCall(call *ast.CallExpr) (recv string, read, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock":
		read = false
	case "RLock":
		read = true
	default:
		return "", false, false
	}
	if t := p.TypeOf(sel.X); t != nil && !hasMethod(t, unlockName(read)) {
		return "", false, false
	}
	return types.ExprString(sel.X), read, true
}

func unlockName(read bool) string {
	if read {
		return "RUnlock"
	}
	return "Unlock"
}

func hasMethod(t types.Type, name string) bool {
	for _, tt := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(tt)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == name {
				return true
			}
		}
	}
	return false
}

func (p *Pass) checkLock(funcBody *ast.BlockStmt, l lockSite) {
	want := unlockName(l.read)

	// A deferred unlock anywhere in the function covers every path.
	if p.hasDeferredUnlock(funcBody, l.recv, want) {
		return
	}

	// Collect explicit unlock calls after the Lock.
	var unlocks []*ast.CallExpr
	inspectSameFunc(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= l.call.Pos() {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
			sel.Sel.Name == want && types.ExprString(sel.X) == l.recv {
			unlocks = append(unlocks, call)
		}
		return true
	})
	if len(unlocks) == 0 {
		p.Reportf(l.call.Pos(),
			"add `defer "+l.recv+"."+want+"()` immediately after the Lock",
			"%s.%s with no matching %s on any path", l.recv, lockName(l.read), want)
		return
	}
	lastUnlock := unlocks[len(unlocks)-1]
	firstUnlock := unlocks[0]

	// Early returns between the Lock and the last unlock: flag any return
	// with no unlock textually before it (cheap dominator approximation).
	inspectSameFunc(funcBody, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() <= l.call.Pos() || ret.Pos() >= lastUnlock.Pos() {
			return true
		}
		for _, u := range unlocks {
			if u.Pos() < ret.Pos() {
				return true
			}
		}
		p.Reportf(ret.Pos(),
			"unlock before returning, or hoist a `defer "+l.recv+"."+want+"()`",
			"early return leaves %s locked", l.recv)
		return true
	})

	// Blocking sim primitives between the Lock and the first unlock.
	inspectSameFunc(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= l.call.Pos() || call.Pos() >= firstUnlock.Pos() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !blockingPrimNames[sel.Sel.Name] {
			return true
		}
		if !p.isSimBlockingRecv(sel.X) {
			return true
		}
		p.Reportf(call.Pos(),
			"release "+l.recv+" before blocking in virtual time; a parked holder deadlocks the event loop",
			"blocking sim primitive %s.%s called while %s is held",
			types.ExprString(sel.X), sel.Sel.Name, l.recv)
		return true
	})
}

func lockName(read bool) string {
	if read {
		return "RLock"
	}
	return "Lock"
}

func (p *Pass) hasDeferredUnlock(funcBody *ast.BlockStmt, recv, want string) bool {
	found := false
	inspectSameFunc(funcBody, func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		if sel, ok := def.Call.Fun.(*ast.SelectorExpr); ok &&
			sel.Sel.Name == want && types.ExprString(sel.X) == recv {
			found = true
		}
		return !found
	})
	return found
}

// isSimBlockingRecv reports whether e's type is a virtual-time primitive:
// declared under internal/sim or internal/mpi, or named like one (fixture
// escape hatch). sync.Cond and friends stay exempt.
func (p *Pass) isSimBlockingRecv(e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if path == "sync" || path == "time" {
		return false
	}
	if strings.Contains(path, "internal/sim") || strings.Contains(path, "internal/mpi") {
		return true
	}
	return simPrimitiveTypeNames[obj.Name()]
}
