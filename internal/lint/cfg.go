package lint

// cfg.go — a per-function control-flow graph over go/ast, the foundation
// the resource-lifecycle checks (poolleak, ackleak, the CFG-backed
// lockheld) run on. The seven original checks are single-statement
// pattern matchers; the bugs that matter in the durable-streams era —
// a pooled batch whose Put is skipped on one error path, a fetched
// delivery that never reaches Ack — are properties of *paths*, not
// statements. The graph is deliberately small: basic blocks of "simple"
// nodes (expression/assign/defer/return statements plus the condition
// expressions of the branches that were decomposed), edges for
// if/for/range/switch/select/goto/labeled break/continue, and a single
// exit block that return, panic and terminating calls (os.Exit,
// log.Fatal) all route to.

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one basic block: an ordered run of simple nodes with no
// internal control flow, plus its successor edges.
type cfgBlock struct {
	nodes []ast.Node  // statements and decomposed condition expressions
	succs []*cfgBlock // successor blocks (the exit block included)

	// term is the statement that routed this block to the exit
	// (a return, panic or terminating call), when there is one. Leak
	// reports anchor here so "early return leaves X locked" points at
	// the return, not the acquire.
	term ast.Node

	// cond/onTrue/onFalse record a two-way branch on cond: onTrue is the
	// successor taken when cond holds. Dataflow walkers use this for
	// narrow branch-sensitivity (the `if err != nil` vacuity guard in
	// obligation.go); plain traversal just uses succs.
	cond    ast.Expr
	onTrue  *cfgBlock
	onFalse *cfgBlock
}

// rangeHeader stands in for a range statement's header (Key/Value/X) in
// the CFG. It implements ast.Node for position bookkeeping but must never
// be handed to ast.Inspect — callers scan rng.X (and read Key/Value)
// instead. Its End is the range expression's end, so `within` never
// claims body statements belong to the header.
type rangeHeader struct {
	rng *ast.RangeStmt
}

func (r *rangeHeader) Pos() token.Pos { return r.rng.Pos() }
func (r *rangeHeader) End() token.Pos { return r.rng.X.End() }

// funcCFG is the graph for one function body.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

// terminatingCallNames are selector names treated as "this path never
// returns": the block routes straight to exit. Conservative — a custom
// fatal helper is not recognized — but panic() is, which covers the
// panic-only paths the obligation analysis must reason about.
var terminatingCallNames = map[string]bool{
	"Exit": true, "Fatal": true, "Fatalf": true, "Fatalln": true, "Goexit": true,
}

type cfgBuilder struct {
	g   *funcCFG
	cur *cfgBlock

	// frames is the stack of enclosing breakable/continuable constructs.
	frames []cfgFrame
	// labels maps label name -> its block (created lazily so forward
	// gotos resolve).
	labels map[string]*cfgBlock
	// pendingLabel is the label of the labeled statement being built, so
	// the next loop/switch construct claims it for labeled break/continue.
	pendingLabel string
}

// cfgFrame is one enclosing construct a break/continue can target.
type cfgFrame struct {
	label string
	brk   *cfgBlock
	cont  *cfgBlock // nil for switch/select (not continuable)
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{
		g:      &funcCFG{},
		labels: map[string]*cfgBlock{},
	}
	b.g.exit = &cfgBlock{}
	b.g.entry = b.newBlock()
	b.cur = b.g.entry
	b.stmtList(body.List)
	// Falling off the end of the body is a normal exit.
	b.edge(b.cur, b.g.exit)
	b.g.blocks = append(b.g.blocks, b.g.exit)
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// deadEnd terminates the current block (after a return/break/goto) and
// starts a fresh unreachable block so later statements still get built.
func (b *cfgBuilder) deadEnd() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) labelBlock(name string) *cfgBlock {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.IfStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		condBlk := b.cur
		condBlk.nodes = append(condBlk.nodes, st.Cond)
		condBlk.cond = st.Cond
		then := b.newBlock()
		join := b.newBlock()
		b.edge(condBlk, then)
		condBlk.onTrue = then
		b.cur = then
		b.stmtList(st.Body.List)
		b.edge(b.cur, join)
		if st.Else != nil {
			els := b.newBlock()
			b.edge(condBlk, els)
			condBlk.onFalse = els
			b.cur = els
			b.stmt(st.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(condBlk, join)
			condBlk.onFalse = join
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.stmt(st.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		join := b.newBlock()
		cont := head
		if st.Post != nil {
			cont = b.newBlock()
		}
		b.edge(b.cur, head)
		if st.Cond != nil {
			head.nodes = append(head.nodes, st.Cond)
			head.cond = st.Cond
			head.onTrue = body
			head.onFalse = join
			b.edge(head, join)
		}
		b.edge(head, body)
		b.frames = append(b.frames, cfgFrame{label: label, brk: join, cont: cont})
		b.cur = body
		b.stmtList(st.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		if st.Post != nil {
			b.edge(b.cur, cont)
			b.cur = cont
			b.stmt(st.Post)
		}
		b.edge(b.cur, head)
		b.cur = join

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		body := b.newBlock()
		join := b.newBlock()
		b.edge(b.cur, head)
		// The head node is a rangeHeader wrapper, not the RangeStmt
		// itself: the statement's Body lives in its own blocks, and a
		// walker that ast.Inspect-ed the raw statement would see the
		// body's nodes twice (once here, once in their blocks).
		head.nodes = append(head.nodes, &rangeHeader{rng: st})
		b.edge(head, body)
		b.edge(head, join) // zero iterations
		b.frames = append(b.frames, cfgFrame{label: label, brk: join, cont: head})
		b.cur = body
		b.stmtList(st.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, head)
		b.cur = join

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.stmt(st.Init)
		}
		if st.Tag != nil {
			b.cur.nodes = append(b.cur.nodes, st.Tag)
		}
		b.switchClauses(st.Body.List, label, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.stmt(st.Init)
		}
		b.switchClauses(st.Body.List, label, st.Assign)

	case *ast.SelectStmt:
		label := b.takeLabel()
		selBlk := b.cur
		join := b.newBlock()
		b.frames = append(b.frames, cfgFrame{label: label, brk: join})
		for _, cc := range st.Body.List {
			clause := cc.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(selBlk, blk)
			if clause.Comm != nil {
				blk.nodes = append(blk.nodes, clause.Comm)
			}
			b.cur = blk
			b.stmtList(clause.Body)
			b.edge(b.cur, join)
		}
		b.frames = b.frames[:len(b.frames)-1]
		// select{} blocks forever: join is unreachable, which is exactly
		// right (no clause, no path onward).
		b.cur = join

	case *ast.LabeledStmt:
		lb := b.labelBlock(st.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.pendingLabel = st.Label.Name
		b.stmt(st.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			if t := b.findFrame(st.Label, false); t != nil {
				b.edge(b.cur, t.brk)
			}
			b.deadEnd()
		case token.CONTINUE:
			if t := b.findFrame(st.Label, true); t != nil {
				b.edge(b.cur, t.cont)
			}
			b.deadEnd()
		case token.GOTO:
			b.edge(b.cur, b.labelBlock(st.Label.Name))
			b.deadEnd()
		case token.FALLTHROUGH:
			// Handled by switchClauses (it links the clause to its
			// successor); nothing to record here.
		}

	case *ast.ReturnStmt:
		b.cur.nodes = append(b.cur.nodes, st)
		b.cur.term = st
		b.edge(b.cur, b.g.exit)
		b.deadEnd()

	case *ast.ExprStmt:
		b.cur.nodes = append(b.cur.nodes, st)
		if isTerminatingCall(st.X) {
			b.cur.term = st
			b.edge(b.cur, b.g.exit)
			b.deadEnd()
		}

	default:
		// Assignments, declarations, defers, go statements, sends,
		// inc/dec, empty statements: simple nodes.
		b.cur.nodes = append(b.cur.nodes, s)
	}
}

// switchClauses builds the clause blocks of a switch/type-switch. assign
// is the type-switch's `x := y.(type)` statement, recorded in each clause
// head so walkers see the binding.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, label string, assign ast.Stmt) {
	switchBlk := b.cur
	join := b.newBlock()
	b.frames = append(b.frames, cfgFrame{label: label, brk: join})
	hasDefault := false
	blocks := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
	}
	for i, cs := range clauses {
		clause := cs.(*ast.CaseClause)
		if clause.List == nil {
			hasDefault = true
		}
		blk := blocks[i]
		b.edge(switchBlk, blk)
		if assign != nil {
			blk.nodes = append(blk.nodes, assign)
		}
		for _, e := range clause.List {
			blk.nodes = append(blk.nodes, e)
		}
		b.cur = blk
		body := clause.Body
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				body = body[:n-1]
			}
		}
		b.stmtList(body)
		if fallsThrough && i+1 < len(blocks) {
			b.edge(b.cur, blocks[i+1])
		} else {
			b.edge(b.cur, join)
		}
	}
	if !hasDefault {
		b.edge(switchBlk, join)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

// findFrame resolves a break/continue target: the innermost matching
// frame, or the labeled one. continue skips switch/select frames.
func (b *cfgBuilder) findFrame(label *ast.Ident, needCont bool) *cfgFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needCont && f.cont == nil {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

// isTerminatingCall reports whether e is a call that never returns:
// panic(...), os.Exit, log.Fatal*, runtime.Goexit, t.Fatal*.
func isTerminatingCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		return terminatingCallNames[fn.Sel.Name]
	}
	return false
}
