package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseSnippet type-checks one import-free source string into a Package
// so engine tests can drive checks over hand-built control flow without
// fixture files.
func parseSnippet(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "case.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var soft []error
	conf := types.Config{Error: func(err error) { soft = append(soft, err) }}
	tpkg, _ := conf.Check("snippet", fset, []*ast.File{f}, info)
	for _, err := range soft {
		t.Fatalf("type-check: %v", err)
	}
	return &Package{
		Dir:     ".",
		RelPath: "internal/streams", // in goroleak's scope
		Fset:    fset,
		Files:   []*ast.File{f},
		Types:   tpkg,
		Info:    info,
		Zone:    ZoneReal,
	}
}

// poolPrelude declares a local instrumented pool for obligation cases.
const poolPrelude = `package snippet

type Buf struct{ n int }

type BufPool struct{ free []*Buf }

func (p *BufPool) Get() *Buf {
	if len(p.free) == 0 {
		return &Buf{}
	}
	b := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return b
}

func (p *BufPool) Put(b *Buf) { p.free = append(p.free, b) }

type sink struct{ held *Buf }

func take(p *BufPool, b *Buf) { p.Put(b) }
`

// consPrelude declares a local pull consumer for ackleak cases.
const consPrelude = `package snippet

type Msg struct{ ID string }

type Delivery struct {
	Seq uint64
	Msg Msg
}

type Consumer struct{}

func (c *Consumer) Fetch(n int) ([]Delivery, error) { return nil, nil }
func (c *Consumer) Ack(seq uint64) error            { return nil }
func (c *Consumer) Nak(seq uint64) error            { return nil }
`

// TestObligationPaths drives the CFG + obligation walker through the
// control-flow shapes the old single-statement checks could not see:
// defer-in-loop, goto and labeled break, panic-only paths, handoff to
// another function, struct-field escape, and the err/len vacuity guards.
func TestObligationPaths(t *testing.T) {
	cases := []struct {
		name    string
		prelude string
		src     string
		check   string
		want    int // findings expected from that check
	}{
		{
			name:    "leak on early return",
			prelude: poolPrelude,
			check:   "poolleak",
			want:    1,
			src: `
func f(p *BufPool, fail bool) int {
	b := p.Get()
	if fail {
		return -1
	}
	n := b.n
	p.Put(b)
	return n
}`,
		},
		{
			name:    "put on every branch is clean",
			prelude: poolPrelude,
			check:   "poolleak",
			want:    0,
			src: `
func f(p *BufPool, fail bool) int {
	b := p.Get()
	if fail {
		p.Put(b)
		return -1
	}
	n := b.n
	p.Put(b)
	return n
}`,
		},
		{
			name:    "panic-only path leaks without defer",
			prelude: poolPrelude,
			check:   "poolleak",
			want:    1,
			src: `
func f(p *BufPool, bad bool) {
	b := p.Get()
	if bad {
		panic("bad")
	}
	p.Put(b)
}`,
		},
		{
			name:    "defer covers the panic path",
			prelude: poolPrelude,
			check:   "poolleak",
			want:    0,
			src: `
func f(p *BufPool, bad bool) {
	b := p.Get()
	defer p.Put(b)
	if bad {
		panic("bad")
	}
}`,
		},
		{
			name:    "deferred closure releases",
			prelude: poolPrelude,
			check:   "poolleak",
			want:    0,
			src: `
func f(p *BufPool) {
	b := p.Get()
	defer func() { p.Put(b) }()
	b.n++
}`,
		},
		{
			name:    "goto skips the put",
			prelude: poolPrelude,
			check:   "poolleak",
			want:    1,
			src: `
func f(p *BufPool, fail bool) {
	b := p.Get()
	if fail {
		goto out
	}
	p.Put(b)
out:
	b.n++
}`,
		},
		{
			name:    "goto path that still puts is clean",
			prelude: poolPrelude,
			check:   "poolleak",
			want:    0,
			src: `
func f(p *BufPool, fail bool) {
	b := p.Get()
	if fail {
		goto out
	}
	b.n++
out:
	p.Put(b)
}`,
		},
		{
			name:    "labeled break reaches the put",
			prelude: poolPrelude,
			check:   "poolleak",
			want:    0,
			src: `
func f(p *BufPool, items []int) {
	b := p.Get()
outer:
	for _, it := range items {
		for _, jt := range items {
			if it == jt {
				break outer
			}
		}
	}
	p.Put(b)
}`,
		},
		{
			name:    "return inside loop leaks",
			prelude: poolPrelude,
			check:   "poolleak",
			want:    1,
			src: `
func f(p *BufPool, items []int) {
	b := p.Get()
	for _, it := range items {
		if it < 0 {
			return
		}
		b.n += it
	}
	p.Put(b)
}`,
		},
		{
			name:    "handoff to another function discharges",
			prelude: poolPrelude,
			check:   "poolleak",
			want:    0,
			src: `
func f(p *BufPool) {
	b := p.Get()
	take(p, b)
}`,
		},
		{
			name:    "struct-field store discharges",
			prelude: poolPrelude,
			check:   "poolleak",
			want:    0,
			src: `
func f(p *BufPool, s *sink) {
	b := p.Get()
	s.held = b
}`,
		},
		{
			name:    "return transfers the obligation",
			prelude: poolPrelude,
			check:   "poolleak",
			want:    0,
			src: `
func f(p *BufPool) *Buf {
	b := p.Get()
	return b
}`,
		},
		{
			name:    "switch with a leaking case",
			prelude: poolPrelude,
			check:   "poolleak",
			want:    1,
			src: `
func f(p *BufPool, k int) {
	b := p.Get()
	switch k {
	case 0:
		p.Put(b)
	case 1:
		return
	default:
		p.Put(b)
	}
}`,
		},
		{
			name:    "deferloop flags per-iteration defer",
			prelude: poolPrelude,
			check:   "deferloop",
			want:    1,
			src: `
func f(p *BufPool, n int) {
	for i := 0; i < n; i++ {
		b := p.Get()
		defer p.Put(b)
	}
}`,
		},
		{
			name:    "deferloop ignores iteration-scoped closure",
			prelude: poolPrelude,
			check:   "deferloop",
			want:    0,
			src: `
func f(p *BufPool, n int) {
	for i := 0; i < n; i++ {
		func() {
			b := p.Get()
			defer p.Put(b)
		}()
	}
}`,
		},
		{
			name:    "fetch without settle leaks",
			prelude: consPrelude,
			check:   "ackleak",
			want:    1,
			src: `
func f(c *Consumer, use func(Msg)) {
	ds, err := c.Fetch(8)
	if err != nil {
		return
	}
	for _, d := range ds {
		use(d.Msg)
	}
}`,
		},
		{
			name:    "err and len guards are vacuous, loop settles",
			prelude: consPrelude,
			check:   "ackleak",
			want:    0,
			src: `
func f(c *Consumer) {
	ds, err := c.Fetch(8)
	if err != nil || len(ds) == 0 {
		return
	}
	for _, d := range ds {
		_ = c.Ack(d.Seq)
	}
}`,
		},
		{
			name:    "settle through an index-derived delivery",
			prelude: consPrelude,
			check:   "ackleak",
			want:    0,
			src: `
func f(c *Consumer, requeue func(uint64)) {
	ds, err := c.Fetch(8)
	if err != nil {
		return
	}
	for i := range ds {
		d := ds[i]
		requeue(d.Seq)
	}
}`,
		},
		{
			name:    "goroutine without anchor is flagged",
			prelude: "package snippet\n\ntype w struct{ n int }\n\nfunc (x *w) loop() { for { x.n++ } }\n",
			check:   "goroleak",
			want:    1,
			src: `
func f(x *w) {
	go x.loop()
}`,
		},
		{
			name:    "goroutine selecting on done is clean",
			prelude: "package snippet\n\ntype w struct{ n int; done chan struct{} }\n",
			check:   "goroleak",
			want:    0,
			src: `
func f(x *w) {
	go func() {
		for {
			select {
			case <-x.done:
				return
			default:
				x.n++
			}
		}
	}()
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := parseSnippet(t, tc.prelude+tc.src)
			var got []Finding
			for _, f := range Run(pkg, Checks()) {
				if f.Check == tc.check {
					got = append(got, f)
				}
			}
			if len(got) != tc.want {
				t.Errorf("%s findings = %d, want %d: %v", tc.check, len(got), tc.want, got)
			}
		})
	}
}

// TestLockheldCFGShapes exercises the ported lockheld on shapes the old
// textual heuristic got wrong or could not express: unlock on both arms
// of a nested branch, a leak confined to one switch case, and an unlock
// only reachable by goto.
func TestLockheldCFGShapes(t *testing.T) {
	const prelude = `package snippet

type mutex struct{ held bool }

func (m *mutex) Lock()   { m.held = true }
func (m *mutex) Unlock() { m.held = false }

type box struct {
	mu mutex
	n  int
}
`
	cases := []struct {
		name string
		src  string
		want int
	}{
		{
			name: "nested branches each unlock",
			want: 0,
			src: `
func f(b *box, x, y bool) int {
	b.mu.Lock()
	if x {
		if y {
			b.mu.Unlock()
			return 1
		}
		b.mu.Unlock()
		return 2
	}
	b.mu.Unlock()
	return 0
}`,
		},
		{
			name: "one switch case leaks",
			want: 1,
			src: `
func f(b *box, k int) {
	b.mu.Lock()
	switch k {
	case 0:
		b.mu.Unlock()
	case 1:
		return
	default:
		b.mu.Unlock()
	}
}`,
		},
		{
			name: "unlock after goto join",
			want: 0,
			src: `
func f(b *box, x bool) {
	b.mu.Lock()
	if x {
		goto out
	}
	b.n++
out:
	b.mu.Unlock()
}`,
		},
		{
			name: "loop early return leaks",
			want: 1,
			src: `
func f(b *box, items []int) {
	b.mu.Lock()
	for _, it := range items {
		if it < 0 {
			return
		}
		b.n += it
	}
	b.mu.Unlock()
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := parseSnippet(t, prelude+tc.src)
			var got []Finding
			for _, f := range Run(pkg, Checks()) {
				if f.Check == "lockheld" {
					got = append(got, f)
				}
			}
			if len(got) != tc.want {
				t.Errorf("lockheld findings = %d, want %d: %v", len(got), tc.want, got)
			}
		})
	}
}

// TestCFGStructure sanity-checks the graph builder directly: every
// return routes to the single exit block, select{} has no path onward,
// and fallthrough links adjacent switch clauses.
func TestCFGStructure(t *testing.T) {
	const src = `package snippet

func returns(x bool) int {
	if x {
		return 1
	}
	return 0
}

func forever(ch chan int) {
	select {}
}

func falls(k int) int {
	n := 0
	switch k {
	case 0:
		n++
		fallthrough
	case 1:
		n += 2
	}
	return n
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	bodies := map[string]*ast.BlockStmt{}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			bodies[fn.Name.Name] = fn.Body
		}
	}

	// Count exit edges from blocks reachable from the entry: the builder
	// also leaves an unreachable tail block after the final return, whose
	// fallthrough edge must not be confused with a real path.
	g := buildCFG(bodies["returns"])
	reach := map[*cfgBlock]bool{}
	var mark func(b *cfgBlock)
	mark = func(b *cfgBlock) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.succs {
			mark(s)
		}
	}
	mark(g.entry)
	exitPreds := 0
	for _, b := range g.blocks {
		if !reach[b] {
			continue
		}
		for _, s := range b.succs {
			if s == g.exit {
				exitPreds++
			}
		}
	}
	if exitPreds != 2 {
		t.Errorf("returns: %d reachable edges into exit, want 2 (one per return)", exitPreds)
	}

	g = buildCFG(bodies["forever"])
	if reachesExit(g) {
		t.Error("select{}: exit is reachable, want forever-blocked")
	}

	g = buildCFG(bodies["falls"])
	if !reachesExit(g) {
		t.Error("fallthrough switch: exit unreachable")
	}
}

func reachesExit(g *funcCFG) bool {
	seen := map[*cfgBlock]bool{}
	var walk func(b *cfgBlock) bool
	walk = func(b *cfgBlock) bool {
		if b == g.exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(g.entry)
}

// TestTerminatingCalls: os.Exit/log.Fatal-shaped calls terminate their
// block the same way panic does.
func TestTerminatingCalls(t *testing.T) {
	for _, expr := range []string{`panic("x")`, `os.Exit(1)`, `log.Fatalf("x")`} {
		src := "package snippet\n\nfunc f() {\n\t" + expr + "\n}\n"
		f, err := parser.ParseFile(token.NewFileSet(), "t.go", src, 0)
		if err != nil {
			t.Fatal(err)
		}
		fn := f.Decls[0].(*ast.FuncDecl)
		st := fn.Body.List[0].(*ast.ExprStmt)
		if !isTerminatingCall(st.X) {
			t.Errorf("%s not recognized as terminating", expr)
		}
	}
	if isTerminatingCall(&ast.Ident{Name: "x"}) {
		t.Error("bare ident recognized as terminating")
	}
	if !strings.Contains(poolPrelude, "package snippet") {
		t.Fatal("prelude drifted")
	}
}
