package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

var goroleakCheck = &Check{
	Name: "goroleak",
	Doc:  "goroutines spawned in internal/streams, internal/ldms and internal/topo must be tied to a stop channel, context, or WaitGroup",
	Run:  runGoroleak,
}

// goroleakPaths are the module-relative package subtrees the check covers:
// the transports that spawn long-lived goroutines. The deterministic sim
// core is single-threaded by design and cmd/* binaries die with the
// process, so a module-wide rule would be noise; these packages hold the
// monitor/heartbeat/accept loops (and the shard-query fan-out) whose
// leaks survive Close and fail the -race soaks nondeterministically.
var goroleakPaths = []string{"internal/streams", "internal/ldms", "internal/topo"}

// shutdownIdentNames are the identifier/field names whose use inside a
// goroutine body marks it as tied to a shutdown signal.
var shutdownIdentNames = map[string]bool{
	"done": true, "stop": true, "stopCh": true, "quit": true,
	"closing": true, "closed": true, "shutdown": true, "ctx": true,
}

// runGoroleak flags `go` statements whose goroutine is anchored to
// nothing: no WaitGroup.Add before the spawn, and no reference to a stop
// channel, context, or WaitGroup inside the goroutine body. Such a
// goroutine cannot be joined by Close, so tests leak it, the race
// detector sees it touch freed state, and a reconnect loop can resurrect
// connections after shutdown.
func runGoroleak(p *Pass) {
	if !goroleakApplies(p) {
		return
	}
	// Index same-package function declarations so `go f.monitor(conn)`
	// can be judged by monitor's body.
	decls := map[string]*ast.FuncDecl{}
	for _, file := range p.Files {
		for _, d := range file.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				decls[fn.Name.Name] = fn
			}
		}
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				p.goroleakFunc(body, decls)
			}
			return true
		})
	}
}

func goroleakApplies(p *Pass) bool {
	for _, path := range goroleakPaths {
		if p.RelPath == path || strings.HasPrefix(p.RelPath, path+"/") {
			return true
		}
	}
	// Fixture packages opt in by name.
	return len(p.Files) > 0 && p.Files[0].Name.Name == "goroleak"
}

func (p *Pass) goroleakFunc(body *ast.BlockStmt, decls map[string]*ast.FuncDecl) {
	inspectSameFunc(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if waitGroupAddBefore(p, body, gs) {
			return true
		}
		if target := goroutineBody(gs, decls); target != nil {
			if referencesShutdown(p, target) {
				return true
			}
		} else {
			// Spawned function is out of reach (another package, a
			// variable): too opaque to judge, stay quiet.
			return true
		}
		p.Reportf(gs.Pos(),
			"tie the goroutine down: wg.Add(1) before the spawn with defer wg.Done() inside, or select on a stop channel/context in its body",
			"goroutine is not tied to a stop channel, context, or WaitGroup — it cannot be joined on Close")
		return true
	})
}

// waitGroupAddBefore reports whether a WaitGroup.Add call precedes the go
// statement in the same function body (the canonical `wg.Add(1); go ...`
// spawn idiom).
func waitGroupAddBefore(p *Pass, body *ast.BlockStmt, gs *ast.GoStmt) bool {
	found := false
	inspectSameFunc(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= gs.Pos() {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return !found
		}
		if isWaitGroupExpr(p, sel.X) {
			found = true
		}
		return !found
	})
	return found
}

// isWaitGroupExpr reports whether e is a sync.WaitGroup (by type when
// available, by a name containing "wg"/"WaitGroup" otherwise).
func isWaitGroupExpr(p *Pass, e ast.Expr) bool {
	if t := p.TypeOf(e); t != nil {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
		}
		return false
	}
	name := exprTailName(e)
	lower := strings.ToLower(name)
	return strings.Contains(lower, "wg") || strings.Contains(lower, "waitgroup")
}

// exprTailName extracts the final identifier of x / x.y / (&x).y chains.
func exprTailName(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	case *ast.UnaryExpr:
		return exprTailName(v.X)
	case *ast.ParenExpr:
		return exprTailName(v.X)
	}
	return ""
}

// goroutineBody resolves the body the go statement will execute: an
// inline func literal, or a same-package function/method declaration
// found by name. Returns nil when the callee is out of reach.
func goroutineBody(gs *ast.GoStmt, decls map[string]*ast.FuncDecl) *ast.BlockStmt {
	switch fn := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		return fn.Body
	case *ast.Ident:
		if d, ok := decls[fn.Name]; ok {
			return d.Body
		}
	case *ast.SelectorExpr:
		if d, ok := decls[fn.Sel.Name]; ok {
			return d.Body
		}
	}
	return nil
}

// referencesShutdown reports whether the goroutine body touches a
// shutdown mechanism: a done/stop/quit/ctx identifier or field, a
// ctx.Done() or wg.Done()/wg.Wait() call, or a context.Context value.
func referencesShutdown(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.Ident:
			if shutdownIdentNames[e.Name] {
				found = true
			}
		case *ast.SelectorExpr:
			if shutdownIdentNames[e.Sel.Name] || e.Sel.Name == "Done" || e.Sel.Name == "Wait" {
				found = true
			}
			if t := p.TypeOf(e.X); t != nil && isContextType(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
