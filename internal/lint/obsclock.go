package lint

import (
	"go/ast"
	"sort"
)

// obsPkgPath is the module path of the telemetry package whose
// wall-clock constructor must stay out of the sim zone.
const obsPkgPath = "darshanldms/internal/obs"

// bannedObsFuncs are obs entry points that bind telemetry to the host's
// wall clock. Instrumenting sim-zone code with them stamps spans and
// latency histograms with host time, which silently breaks both the
// clock-agnostic contract and (worse) the bit-identical seeded outputs
// the telemetry plane promises not to perturb.
var bannedObsFuncs = map[string]string{
	"WallClock": "inject the engine's virtual clock instead (e.g. engine.Now or ctx.Now as an obs.Clock)",
}

var obsclockCheck = &Check{
	Name:  "obsclock",
	Doc:   "no obs.WallClock in the deterministic sim zone: telemetry there must run on virtual time",
	Zones: []Zone{ZoneSim},
	Run:   runObsclock,
}

func runObsclock(p *Pass) {
	names := make([]string, 0, len(bannedObsFuncs))
	for name := range bannedObsFuncs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, file := range p.Files {
		f := file
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := p.IsPkgCall(f, call, obsPkgPath, names...)
			if !ok {
				return true
			}
			p.Reportf(call.Pos(), bannedObsFuncs[name],
				"wall-clock telemetry obs.%s in deterministic sim zone", name)
			return true
		})
	}
}
