// Package ackleak is a known-bad fixture for the ackleak check.
package ackleak

// Msg mimics streams.Message.
type Msg struct{ ID string }

// Delivery mimics streams.Delivery: one inflight message plus its
// redelivery cursor.
type Delivery struct {
	Seq uint64
	Msg Msg
}

// Consumer mimics the pull-based streams.Consumer.
type Consumer struct{}

func (c *Consumer) Fetch(n int) ([]Delivery, error) { return nil, nil }
func (c *Consumer) Ack(seq uint64) error            { return nil }
func (c *Consumer) Nak(seq uint64) error            { return nil }

// Drop reads the payloads and never settles: the deliveries sit
// inflight until the ack deadline and redeliver.
func Drop(c *Consumer, sink func(Msg)) {
	ds, err := c.Fetch(8) // want ackleak
	if err != nil {
		return
	}
	for _, d := range ds {
		sink(d.Msg)
	}
}

// DropNoGuard fetches and walks away.
func DropNoGuard(c *Consumer) {
	ds, _ := c.Fetch(4) // want ackleak
	_ = ds
}

// GoodAckLoop settles every delivery (the empty-fetch case has nothing
// to settle, so the loop covers the zero-iteration path too).
func GoodAckLoop(c *Consumer) {
	ds, err := c.Fetch(8)
	if err != nil {
		return
	}
	for _, d := range ds {
		if d.Seq%2 == 0 {
			_ = c.Ack(d.Seq)
		} else {
			_ = c.Nak(d.Seq)
		}
	}
}

// GoodGuardChain: the ||-chain guard holds no deliveries on its true
// edge, and the loop settles them on the false edge.
func GoodGuardChain(c *Consumer) {
	ds, err := c.Fetch(8)
	if err != nil || len(ds) == 0 {
		return
	}
	for _, d := range ds {
		_ = c.Ack(d.Seq)
	}
}

// GoodHelperSettle hands each delivery's fate to a helper by Seq.
func GoodHelperSettle(c *Consumer, requeue func(uint64)) {
	ds, err := c.Fetch(8)
	if err != nil {
		return
	}
	for i := range ds {
		d := ds[i]
		requeue(d.Seq)
	}
}

// GoodBatchHandoff passes the whole batch on: the callee inherits the
// obligation.
func GoodBatchHandoff(c *Consumer, process func([]Delivery)) {
	ds, err := c.Fetch(8)
	if err != nil {
		return
	}
	process(ds)
}

// GoodReturn transfers the obligation to the caller.
func GoodReturn(c *Consumer) ([]Delivery, error) {
	return c.Fetch(8)
}

// Suppressed is an acknowledged drop (e.g. a drain-and-discard test).
func Suppressed(c *Consumer) {
	ds, _ := c.Fetch(1) //lint:allow ackleak fixture: deliberate drain, redelivery is the point
	_ = ds
}
