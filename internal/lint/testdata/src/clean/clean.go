// Package clean triggers no checks even in the sim zone: the harness
// asserts zero findings here.
//
//lint:zone sim
package clean

import (
	"sort"
	"sync"
	"time"
)

// Totals folds a map commutatively and sorts what it appends.
type Totals struct {
	mu sync.Mutex
	m  map[string]time.Duration
}

// Add accumulates a duration computed from virtual time.
func (t *Totals) Add(key string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = map[string]time.Duration{}
	}
	t.m[key] += d
}

// Keys returns the keys in deterministic order.
func (t *Totals) Keys() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]string, 0, len(t.m))
	for k := range t.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Horizon is pure time arithmetic: no clock read.
func Horizon(start time.Duration) time.Duration {
	return start + 90*time.Second
}
