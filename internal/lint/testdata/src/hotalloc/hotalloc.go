// Package hotalloc is a known-bad fixture for the hotalloc check.
//
//lint:hotpath
package hotalloc

import "fmt"

// Event stands in for the per-event record flowing through the hot path.
type Event struct {
	Rank int
	Op   string
}

// Encode is hot-path code: Sprintf here allocates per event.
func Encode(e *Event) string {
	header := fmt.Sprintf("rank=%d", e.Rank) // want hotalloc
	return header + "," + e.Op
}

// EncodeSuppressed shows the per-line escape hatch.
func EncodeSuppressed(e *Event) string {
	//lint:allow hotalloc measured: not on the steady-state path
	return fmt.Sprintf("rank=%d", e.Rank)
}

// EncodeAblation is the deliberate sprintf ablation: the function-level
// doc directive suppresses every call site in the body.
//
//lint:allow hotalloc deliberate sprintf-encoder ablation (Table IIc)
func EncodeAblation(e *Event) string {
	a := fmt.Sprintf("rank=%d", e.Rank)
	b := fmt.Sprintf("op=%q", e.Op)
	return a + "," + b
}

// String is a cold debug formatter: never flagged.
func (e *Event) String() string {
	return fmt.Sprintf("event(rank=%d op=%s)", e.Rank, e.Op)
}

// Name is a cold identity formatter: never flagged.
func (e *Event) Name() string {
	return fmt.Sprintf("event-%d", e.Rank)
}

// Fprintf-family calls that do not Sprintf are out of scope.
func Describe(e *Event) (int, error) {
	return fmt.Println(e.Op)
}

// EncodeSprint: Sprintf's allocating siblings count too.
func EncodeSprint(e *Event) string {
	a := fmt.Sprint("rank=", e.Rank) // want hotalloc
	b := fmt.Sprintln(e.Op)          // want hotalloc
	return a + b
}

// Object stands in for sos.Object: underlying []any, so a non-empty
// literal boxes every element.
type Object []any

// BuildRow boxes three values per event at construction.
func BuildRow(e *Event) Object {
	return Object{e.Rank, e.Op, uint64(e.Rank)} // want hotalloc
}

// BuildRowLiteral: a plain []any literal is the same boxing.
func BuildRowLiteral(e *Event) []any {
	return []any{e.Rank, e.Op} // want hotalloc
}

// BuildEmpty: an empty literal boxes nothing — not flagged.
func BuildEmpty() Object {
	return Object{}
}

// BuildTyped: concrete element types don't box — not flagged.
func BuildTyped(e *Event) []int {
	return []int{e.Rank, e.Rank + 1}
}

// BuildRowCold is a deliberately cold admin-path builder.
//
//lint:allow hotalloc cold admin path: runs once per job, not per event
func BuildRowCold(e *Event) Object {
	return Object{e.Rank, e.Op}
}
