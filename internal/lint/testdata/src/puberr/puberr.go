// Package puberr is a known-bad fixture for the puberr check.
package puberr

// Forwarder mimics the delivery-path API surface.
type Forwarder struct{}

// Publish delivers a message; the error reports data loss.
func (f *Forwarder) Publish(b []byte) error { return nil }

// Store persists a message; the error reports data loss.
func (f *Forwarder) Store(b []byte) error { return nil }

// Ingest loads a batch; the error reports data loss.
func (f *Forwarder) Ingest(b []byte) (int, error) { return 0, nil }

// Count returns a drop count, not an error: never flagged.
func (f *Forwarder) Count(b []byte) int { return 0 }

// Insert writes to a replicated shard; the error breaks the ack contract.
func (f *Forwarder) Insert(b []byte) error { return nil }

// Append writes a WAL record; the error breaks durability.
func (f *Forwarder) Append(b []byte) error { return nil }

// Restart recovers a crashed daemon; the error leaves it empty.
func (f *Forwarder) Restart() error { return nil }

// Consumer mimics the durable-stream consumer protocol.
type Consumer struct{}

// Ack advances the durable floor; a dropped error stalls redelivery.
func (c *Consumer) Ack(seq uint64) error { return nil }

// Nak schedules redelivery; a dropped error strands the message.
func (c *Consumer) Nak(seq uint64) error { return nil }

// Fetch pulls the next batch; a dropped error looks like an empty stream.
func (c *Consumer) Fetch(n int) ([]byte, error) { return nil, nil }

// AppendStream persists a published message to the stream segment.
func (c *Consumer) AppendStream(b []byte) (uint64, error) { return 0, nil }

// Bad drops delivery errors on the floor.
func Bad(f *Forwarder, c *Consumer, b []byte) {
	f.Publish(b)      // want puberr
	f.Store(b)        // want puberr
	f.Ingest(b)       // want puberr
	f.Insert(b)       // want puberr
	f.Append(b)       // want puberr
	f.Restart()       // want puberr
	c.Ack(1)          // want puberr
	c.Nak(1)          // want puberr
	c.Fetch(16)       // want puberr
	c.AppendStream(b) // want puberr
}

// Good handles, visibly discards, or annotates.
func Good(f *Forwarder, c *Consumer, b []byte) error {
	if err := f.Publish(b); err != nil {
		return err
	}
	_ = f.Store(b) // explicit discard is visible in review: allowed
	f.Count(b)     // non-error result: allowed
	//lint:allow puberr fixture: fire-and-forget fan-out, drops are counted upstream
	f.Publish(b)
	if err := c.Ack(1); err != nil {
		return err
	}
	_ = c.Nak(1) // poison-message give-up, deliberately visible: allowed
	return nil
}
