// Package lockheld is a known-bad fixture for the lockheld check.
package lockheld

import "sync"

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// NoUnlock never releases the mutex.
func (c *counter) NoUnlock() {
	c.mu.Lock() // want lockheld
	c.n++
}

// EarlyReturn leaks the lock on the error path.
func (c *counter) EarlyReturn(fail bool) int {
	c.mu.Lock()
	if fail {
		return -1 // want lockheld
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// ReadNoUnlock: RLock needs RUnlock, not Unlock.
func (c *counter) ReadNoUnlock() int {
	c.rw.RLock() // want lockheld
	return c.n
}

// GoodDefer is the canonical pattern.
func (c *counter) GoodDefer() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// GoodManual unlocks on every path by hand.
func (c *counter) GoodManual(fail bool) int {
	c.mu.Lock()
	if fail {
		c.mu.Unlock()
		return -1
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// Mailbox mimics a sim primitive: Recv parks the process in virtual time.
type Mailbox struct{}

// Recv blocks in virtual time.
func (m *Mailbox) Recv() any { return nil }

// BlockingHeld parks on a sim primitive while holding the lock: in the DES
// this deadlocks the event loop, not just this goroutine.
func (c *counter) BlockingHeld(mb *Mailbox) {
	c.mu.Lock()
	_ = mb.Recv() // want lockheld
	c.mu.Unlock()
}

// Suppressed is an acknowledged handoff pattern.
func (c *counter) Suppressed() {
	c.mu.Lock() //lint:allow lockheld fixture: unlocked by the callback
	c.n++
}
