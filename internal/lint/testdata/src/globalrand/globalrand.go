// Package globalrand is a known-bad fixture for the globalrand check.
package globalrand

import (
	"math/rand" // want globalrand
)

// Global is exactly the pattern the check exists to kill: process-global
// mutable randomness with no owned seed.
var Global = rand.New(rand.NewSource(1)) // want globalrand

// Roll perturbs every other consumer of Global.
func Roll() int { return Global.Intn(6) }
