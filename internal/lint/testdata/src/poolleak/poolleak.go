// Package poolleak is a known-bad fixture for the poolleak check.
package poolleak

import "sync"

// Batch mimics event.Batch.
type Batch struct{ n int }

// BatchPool mimics the instrumented event.BatchPool: Get checks out,
// Put returns.
type BatchPool struct{ free []*Batch }

func (p *BatchPool) Get() *Batch {
	if len(p.free) == 0 {
		return &Batch{}
	}
	b := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return b
}

func (p *BatchPool) Put(b *Batch) { p.free = append(p.free, b) }

// holder receives escaped batches.
type holder struct{ b *Batch }

// Leak skips Put on the early-return path.
func Leak(p *BatchPool, fail bool) int {
	b := p.Get() // want poolleak
	if fail {
		return -1
	}
	n := b.n
	p.Put(b)
	return n
}

// LeakPanic skips Put on the panic-only path (a defer would cover it).
func LeakPanic(p *BatchPool, bad bool) {
	b := p.Get() // want poolleak
	if bad {
		panic("bad batch")
	}
	p.Put(b)
}

// GotoLeak jumps over the Put.
func GotoLeak(p *BatchPool, fail bool) {
	b := p.Get() // want poolleak
	if fail {
		goto out
	}
	p.Put(b)
out:
	b.n++
}

// LoopReturnLeak returns out of the loop with the batch still held.
func LoopReturnLeak(p *BatchPool, items []int) {
	b := p.Get() // want poolleak
	for _, it := range items {
		if it < 0 {
			return
		}
		b.n += it
	}
	p.Put(b)
}

// GoodDefer is the canonical pattern: covers returns and panics alike.
func GoodDefer(p *BatchPool) {
	b := p.Get()
	defer p.Put(b)
	b.n++
}

// GoodDeferClosure releases inside a deferred closure (the
// WriteBatchFrame shape).
func GoodDeferClosure(p *BatchPool) {
	b := p.Get()
	defer func() { p.Put(b) }()
	b.n++
}

// GoodManual puts on every path by hand.
func GoodManual(p *BatchPool, fail bool) int {
	b := p.Get()
	if fail {
		p.Put(b)
		return -1
	}
	n := b.n
	p.Put(b)
	return n
}

// GoodReturn transfers ownership to the caller.
func GoodReturn(p *BatchPool) *Batch {
	b := p.Get()
	b.n = 1
	return b
}

// GoodFieldEscape stores the batch into a struct field: whoever holds h
// owns the Put now.
func GoodFieldEscape(p *BatchPool, h *holder) {
	b := p.Get()
	h.b = b
}

// GoodHandoff passes the batch to another function, obligation included.
func GoodHandoff(p *BatchPool) {
	b := p.Get()
	consume(p, b)
}

func consume(p *BatchPool, b *Batch) { p.Put(b) }

// GoodLabeledBreak releases after breaking out of nested loops.
func GoodLabeledBreak(p *BatchPool, items []int) {
	b := p.Get()
outer:
	for _, it := range items {
		for _, jt := range items {
			if it == jt {
				break outer
			}
		}
	}
	p.Put(b)
}

// GoodSyncPool: sync.Pool itself is exempt (its Get feeds type
// assertions that may legitimately discard).
func GoodSyncPool(sp *sync.Pool) {
	v := sp.Get()
	_ = v
}

// Suppressed is an acknowledged handoff the analysis cannot see.
func Suppressed(p *BatchPool) {
	b := p.Get() //lint:allow poolleak fixture: released by a registered finalizer
	b.n++
}

// Slab mimics event.Slab: ref-counted, discharged through its own
// Release method rather than a pool Put.
type Slab struct{ refs int }

func (s *Slab) Release() { s.refs-- }

// SlabPool mimics event.SlabPool: no Put method; Get checks out a
// ref-counted value whose Release is the discharge.
type SlabPool struct{ free []*Slab }

func (p *SlabPool) Get() *Slab {
	if len(p.free) == 0 {
		return &Slab{refs: 1}
	}
	s := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	s.refs = 1
	return s
}

// SlabLeak skips Release on the early-return path.
func SlabLeak(p *SlabPool, fail bool) int {
	s := p.Get() // want poolleak
	if fail {
		return -1
	}
	n := s.refs
	s.Release()
	return n
}

// GoodSlabDefer is the canonical ref-counted pattern.
func GoodSlabDefer(p *SlabPool) {
	s := p.Get()
	defer s.Release()
	s.refs++
}

// GoodSlabManual releases on every path by hand.
func GoodSlabManual(p *SlabPool, fail bool) int {
	s := p.Get()
	if fail {
		s.Release()
		return -1
	}
	n := s.refs
	s.Release()
	return n
}

// GoodSlabReturn transfers the reference to the caller.
func GoodSlabReturn(p *SlabPool) *Slab {
	return p.Get()
}
