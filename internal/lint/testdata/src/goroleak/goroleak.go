// Package goroleak is a known-bad fixture for the goroleak check (the
// check scopes to internal/streams and internal/ldms; fixture packages
// opt in by being named goroleak).
package goroleak

import "sync"

type worker struct {
	wg   sync.WaitGroup
	done chan struct{}
	n    int
}

// loop has no shutdown reference of its own.
func (w *worker) loop() {
	for {
		w.n++
	}
}

// SpawnUntracked fires a goroutine nothing can join or stop.
func (w *worker) SpawnUntracked() {
	go w.loop() // want goroleak
}

// SpawnUntrackedLit: same bug, inline literal.
func (w *worker) SpawnUntrackedLit() {
	go func() { // want goroleak
		w.n++
	}()
}

// GoodWaitGroup is the canonical spawn idiom: Add before, Done inside.
func (w *worker) GoodWaitGroup() {
	w.wg.Add(1)
	go w.loop()
}

// GoodStopChannel selects on the stop signal inside the body.
func (w *worker) GoodStopChannel() {
	go func() {
		for {
			select {
			case <-w.done:
				return
			default:
				w.n++
			}
		}
	}()
}

// GoodCtxParam threads a context through a named function.
func (w *worker) GoodCtxParam() {
	go w.ctxLoop()
}

func (w *worker) ctxLoop() {
	for {
		select {
		case <-w.done:
			return
		default:
		}
	}
}

// OpaqueCallee spawns a function value the analysis cannot see into:
// too opaque to judge, so it stays quiet.
func OpaqueCallee(fn func()) {
	go fn()
}

// Suppressed is an acknowledged fire-and-forget.
func (w *worker) Suppressed() {
	go w.loop() //lint:allow goroleak fixture: process-lifetime helper, dies with main
}
