// Package obsclock is a known-bad fixture for the obsclock check.
//
//lint:zone sim
package obsclock

import (
	"time"

	"darshanldms/internal/obs"
)

// Bad binds telemetry to the wall clock inside the (forced) sim zone.
func Bad() obs.Clock {
	c := obs.WallClock() // want obsclock
	return c
}

// VirtualOK threads an injected clock — the correct sim-zone pattern.
func VirtualOK(now func() time.Duration) obs.Clock {
	return obs.Clock(now)
}

// InstrumentsOK shows the rest of the obs API is fine in the sim zone:
// counters, gauges and histograms are clock-free.
func InstrumentsOK(reg *obs.Registry) {
	reg.Counter("dlc_fixture_total").Inc()
	reg.Gauge("dlc_fixture_depth").Set(1)
	reg.Histogram("dlc_fixture_ns").Observe(2)
}

// Suppressed demonstrates the //lint:allow escape hatch.
func Suppressed() obs.Clock {
	//lint:allow obsclock fixture demonstrates leading suppression
	return obs.WallClock()
}
