// Package maporder is a known-bad fixture for the maporder check.
package maporder

import (
	"fmt"
	"io"
	"sort"
)

// BadAppend leaks Go's randomized map order into the returned slice.
func BadAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want maporder
		out = append(out, k)
	}
	return out
}

// BadWrite streams rows in map order: the bytes are nondeterministic
// before any sort could happen.
func BadWrite(w io.Writer, m map[string]int) {
	for k, v := range m { // want maporder
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

type bus struct{}

func (bus) Publish(s string) {}

// BadPublish emits events in map order.
func BadPublish(b bus, m map[string]bool) {
	for k := range m { // want maporder
		b.Publish(k)
	}
}

// GoodSorted is the keys-then-sort idiom: allowed.
func GoodSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodCommutative only folds values: order-insensitive, allowed.
func GoodCommutative(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// GoodLocalAppend appends to a map value: stays keyed, allowed.
func GoodLocalAppend(m map[string][]int, src map[string]int) {
	for k, v := range src {
		m[k] = append(m[k], v)
	}
}

// Suppressed is acknowledged nondeterminism.
func Suppressed(m map[string]int) []string {
	var out []string
	//lint:allow maporder fixture: caller sorts downstream
	for k := range m {
		out = append(out, k)
	}
	return out
}
