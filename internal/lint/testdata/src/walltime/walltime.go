// Package walltime is a known-bad fixture for the walltime check.
//
//lint:zone sim
package walltime

import (
	"time"
)

// Bad reads the wall clock inside the (forced) sim zone.
func Bad() time.Time {
	time.Sleep(time.Millisecond) // want walltime
	t := time.Now()              // want walltime
	_ = time.Since(t)            // want walltime
	_ = time.After(time.Second)  // want walltime
	tm := time.NewTimer(0)       // want walltime
	tm.Stop()
	return t
}

// PureConstruction uses only clock-free time arithmetic: not flagged.
func PureConstruction() time.Duration {
	epoch := time.Unix(0, 0)
	later := time.Date(2022, 9, 1, 0, 0, 0, 0, time.UTC)
	return later.Sub(epoch) + 3*time.Second
}

// Suppressed demonstrates the //lint:allow escape hatch, both leading and
// trailing.
func Suppressed() time.Time {
	//lint:allow walltime fixture demonstrates leading suppression
	time.Sleep(time.Millisecond)
	return time.Now() //lint:allow walltime fixture demonstrates trailing suppression
}

// NoReason shows that an allow directive without a reason is inert.
func NoReason() time.Time {
	//lint:allow walltime
	return time.Now() // want walltime
}
