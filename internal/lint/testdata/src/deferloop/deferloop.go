// Package deferloop is a known-bad fixture for the deferloop check.
package deferloop

import "sync"

type store struct {
	mu sync.Mutex
	m  map[string]int
}

// BufPool mimics an instrumented pool.
type BufPool struct{}

func (p *BufPool) Get() *[]byte  { return nil }
func (p *BufPool) Put(b *[]byte) {}

// LockPerKey defers the unlock inside the loop: iteration two deadlocks
// on the lock iteration one still holds.
func LockPerKey(s *store, keys []string) {
	for _, k := range keys {
		s.mu.Lock()
		defer s.mu.Unlock() // want deferloop
		s.m[k]++
	}
}

// PutPerItem defers the Put inside the loop: every checked-out buffer
// waits on the call stack until the function returns.
func PutPerItem(p *BufPool, n int) {
	for i := 0; i < n; i++ {
		b := p.Get()
		defer p.Put(b) // want deferloop
	}
}

// GoodScopedFunc wraps the iteration in a function so the defer scopes
// to it — once per iteration, as intended.
func GoodScopedFunc(s *store, keys []string) {
	for _, k := range keys {
		func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.m[k]++
		}()
	}
}

// GoodDirectRelease releases at the end of the iteration without defer.
func GoodDirectRelease(s *store, keys []string) {
	for _, k := range keys {
		s.mu.Lock()
		s.m[k]++
		s.mu.Unlock()
	}
}

// GoodDeferOutsideLoop is the normal function-scoped defer.
func GoodDeferOutsideLoop(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.m {
		s.m[k]++
	}
}

// Suppressed is an acknowledged accumulate-then-release pattern.
func Suppressed(p *BufPool, n int) {
	for i := 0; i < n; i++ {
		b := p.Get()
		defer p.Put(b) //lint:allow deferloop fixture: n is bounded by a config cap
	}
}
