package pipebench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// The bench floor is the perf sibling of ci/coverage.floor and the lint
// baseline ledger: a committed file that CI compares every run against,
// tightened only by an explicit -write-floor regeneration — never
// loosened silently, never ratcheted by a lucky run. Relative metrics
// (speedups, allocs/event) are the primary gates because they are stable
// across machines; absolute throughput floors are written with a haircut
// (floorHaircut) so a slower CI host does not fail on hardware variance,
// and every floor check allows the tolerance band on top.

// Floor is the committed contents of ci/bench.floor.
type Floor struct {
	Comment                string  `json:"comment"`
	TolerancePct           float64 `json:"tolerance_pct"`
	MinTypedSpeedup        float64 `json:"min_typed_speedup_vs_legacy"`
	MinBatchVsTyped        float64 `json:"min_batch_speedup_vs_typed"`
	MaxBatchAllocsPerEvent float64 `json:"max_batch_allocs_per_event"`
	MinBatchEventsPerSec   float64 `json:"min_batch_events_per_sec"`
	MinScaledEventsPerSec  float64 `json:"min_scaled_events_per_sec"`
}

// floorHaircut scales measured throughput down when writing absolute
// floors, leaving cross-machine headroom under the committed value.
const floorHaircut = 0.75

// LoadFloor reads a committed floor file.
func LoadFloor(path string) (*Floor, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f := &Floor{}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("pipebench: %s: %w", path, err)
	}
	if f.TolerancePct < 0 || f.TolerancePct > 50 {
		return nil, fmt.Errorf("pipebench: %s: tolerance_pct %.1f out of range", path, f.TolerancePct)
	}
	return f, nil
}

// batch returns the typed-batch-wire result of the report, if present.
func (r *Report) batch() *Result {
	for i := range r.Results {
		if r.Results[i].Mode == "typed-batch-wire" {
			return &r.Results[i]
		}
	}
	return nil
}

// bestScaled returns the highest events/sec of the scaling series (0 if
// the series was not run).
func (r *Report) bestScaled() float64 {
	best := 0.0
	for _, p := range r.Scaling {
		if p.EventsPerSec > best {
			best = p.EventsPerSec
		}
	}
	return best
}

// Check compares a report against the floor, applying the tolerance band
// in the regressing direction of each gate (a min floor passes at
// floor*(1-tol), a max ceiling at limit*(1+tol)). It returns every
// violated gate, empty when the run holds the floor.
func (f *Floor) Check(r *Report) []string {
	tol := f.TolerancePct / 100
	var fails []string
	minOK := func(v, floor float64) bool { return floor == 0 || v >= floor*(1-tol) }
	maxOK := func(v, limit float64) bool { return limit == 0 || v <= limit*(1+tol) }

	if !minOK(r.SpeedupTyped, f.MinTypedSpeedup) {
		fails = append(fails, fmt.Sprintf("typed-lazy speedup vs legacy %.2fx < floor %.2fx (-%.0f%%)",
			r.SpeedupTyped, f.MinTypedSpeedup, f.TolerancePct))
	}
	if !minOK(r.BatchVsTyped, f.MinBatchVsTyped) {
		fails = append(fails, fmt.Sprintf("typed-batch-wire speedup vs typed %.2fx < floor %.2fx (-%.0f%%): the batched path must stay the fastest",
			r.BatchVsTyped, f.MinBatchVsTyped, f.TolerancePct))
	}
	b := r.batch()
	if b == nil {
		fails = append(fails, "report has no typed-batch-wire result")
		return fails
	}
	if !maxOK(b.AllocsPerEvent, f.MaxBatchAllocsPerEvent) {
		fails = append(fails, fmt.Sprintf("typed-batch-wire allocs/event %.1f > ceiling %.1f (+%.0f%%)",
			b.AllocsPerEvent, f.MaxBatchAllocsPerEvent, f.TolerancePct))
	}
	if !minOK(b.EventsPerSec, f.MinBatchEventsPerSec) {
		fails = append(fails, fmt.Sprintf("typed-batch-wire %.0f events/sec < floor %.0f (-%.0f%%)",
			b.EventsPerSec, f.MinBatchEventsPerSec, f.TolerancePct))
	}
	if scaled := r.bestScaled(); f.MinScaledEventsPerSec != 0 && len(r.Scaling) > 0 && !minOK(scaled, f.MinScaledEventsPerSec) {
		fails = append(fails, fmt.Sprintf("best scaled throughput %.0f events/sec < floor %.0f (-%.0f%%)",
			scaled, f.MinScaledEventsPerSec, f.TolerancePct))
	}
	return fails
}

// CheckFile loads the floor at path and checks r against it, returning a
// single error listing every violated gate.
func CheckFile(path string, r *Report) error {
	f, err := LoadFloor(path)
	if err != nil {
		return err
	}
	if fails := f.Check(r); len(fails) > 0 {
		return fmt.Errorf("bench floor %s violated:\n  %s", path, strings.Join(fails, "\n  "))
	}
	return nil
}

// WriteFloor regenerates the committed floor from a measured report:
// relative gates are written at the measured value rounded down to a
// modest step (so a marginally better run does not silently tighten the
// ratchet), absolute throughput floors take the cross-machine haircut.
func WriteFloor(path string, r *Report) error {
	b := r.batch()
	if b == nil {
		return fmt.Errorf("pipebench: report has no typed-batch-wire result")
	}
	f := &Floor{
		Comment: "Ratcheted perf floor for the batched wire path; compared by `make bench-smoke` " +
			"with the tolerance band. Regenerate only deliberately: dlc-experiments -only pipeline -write-floor.",
		TolerancePct:           10,
		MinTypedSpeedup:        roundDown(r.SpeedupTyped, 0.25),
		MinBatchVsTyped:        1.0, // the refactor's contract: batched is never slower than unbatched
		MaxBatchAllocsPerEvent: 5,   // the issue's ceiling, not the measured value: room stays room
		MinBatchEventsPerSec:   roundDown(b.EventsPerSec*floorHaircut, 1000),
		MinScaledEventsPerSec:  roundDown(r.bestScaled()*floorHaircut, 1000),
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// roundDown floors v to a multiple of step.
func roundDown(v, step float64) float64 {
	if step <= 0 {
		return v
	}
	n := float64(int64(v / step))
	return n * step
}
