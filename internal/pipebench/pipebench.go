// Package pipebench measures the real (wall-clock) throughput of the
// connector→store message plane in three shapes:
//
//   - legacy: the pre-typed pipeline — JSON is encoded eagerly at the
//     connector, re-parsed at the store, and each row is inserted
//     individually (the parse-at-store hop this refactor deleted);
//   - typed: the lazy message plane — one typed record flows end to end,
//     no JSON is ever produced, rows are batch-inserted;
//   - typed-batch: typed records additionally cross an in-memory wire via
//     the batched TCP frame codec (compact binary, no JSON) before ingest.
//
// Unlike every other panel, these numbers are wall-clock and host-
// dependent, so the pipeline panel is excluded from `-only all` and its
// JSON artifact is a sample, not a golden file. The *simulated* overhead
// charged to ranks (Encoder.SimCost) is untouched by this refactor —
// pipebench exists to show the real-machine win, the seeded tables prove
// the determinism contract held.
package pipebench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"darshanldms/internal/dsos"
	"darshanldms/internal/event"
	"darshanldms/internal/jsonmsg"
	"darshanldms/internal/ldms"
	"darshanldms/internal/rng"
	"darshanldms/internal/sos"
	"darshanldms/internal/streams"
)

// Result is one pipeline shape's measured throughput (best of reps).
type Result struct {
	Mode           string  `json:"mode"`
	Events         int     `json:"events"`
	NsPerEvent     float64 `json:"ns_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// ScalingPoint is one multi-core measurement: the batched wire pipeline
// run across Shards independent ingest shards (own sink, own decoder,
// own arena) over the same total event stream.
type ScalingPoint struct {
	Shards       int     `json:"shards"`
	EventsPerSec float64 `json:"events_per_sec"`
	NsPerEvent   float64 `json:"ns_per_event"`
}

// Report is the full benchmark output written to BENCH_pipeline.json.
type Report struct {
	Seed         uint64         `json:"seed"`
	Events       int            `json:"events"`
	Reps         int            `json:"reps"`
	Results      []Result       `json:"results"`
	SpeedupTyped float64        `json:"speedup_typed_vs_legacy"`
	SpeedupBatch float64        `json:"speedup_typed_batch_vs_legacy"`
	BatchVsTyped float64        `json:"speedup_batch_vs_typed"`
	Scaling      []ScalingPoint `json:"scaling"`
}

// genMessages builds the seeded event stream every mode consumes: the
// connector's Table I shape with Quant6-quantized floats, exactly what
// FromEvent emits.
func genMessages(seed uint64, n int) []*jsonmsg.Message {
	r := rng.New(seed)
	ops := []string{"write", "read", "open", "close"}
	msgs := make([]*jsonmsg.Message, 0, n)
	for i := 0; i < n; i++ {
		msgs = append(msgs, &jsonmsg.Message{
			UID: 99066, Exe: "/projects/hacc/hacc-io", JobID: int64(1 + r.Intn(3)),
			Rank: r.Intn(64), ProducerName: "nid00040", File: "/lscratch/out.dat",
			RecordID: uint64(r.Intn(16)), Module: "POSIX", Type: jsonmsg.TypeMOD,
			MaxByte: int64(r.Intn(1 << 24)), Switches: int64(r.Intn(2)),
			Flushes: int64(r.Intn(3)), Cnt: 1, Op: ops[r.Intn(len(ops))],
			Seg: []jsonmsg.Segment{{
				DataSet: jsonmsg.NA, PtSel: -1, IrregHSlab: -1, RegHSlab: -1,
				NDims: -1, NPoints: -1, Off: int64(i) * 4096, Len: int64(4096 * (1 + r.Intn(4))),
				Dur:       jsonmsg.Quant6(r.Float64() * 0.01),
				Timestamp: jsonmsg.Quant6(1.6e9 + float64(i)*0.25 + r.Float64()),
			}},
			Seq: uint64(i + 1),
		})
	}
	return msgs
}

func newSink() (*dsos.Client, error) {
	c := dsos.NewCluster(4, "darshan_data")
	if err := dsos.SetupDarshan(c); err != nil {
		return nil, err
	}
	return dsos.Connect(c), nil
}

// runLegacy is the deleted pipeline, reconstructed inline for comparison:
// eager encode at the connector, jsonmsg.Parse at the store, one Insert
// per row.
func runLegacy(msgs []*jsonmsg.Message, cl *dsos.Client) error {
	enc := jsonmsg.FastEncoder{}
	for _, m := range msgs {
		payload := enc.Encode(m)
		parsed, err := jsonmsg.Parse(payload)
		if err != nil {
			return err
		}
		for _, obj := range dsos.ObjectsFromMessage(parsed) {
			if err := cl.Insert(dsos.DarshanSchemaName, obj); err != nil {
				return err
			}
		}
	}
	return nil
}

// runTyped is the lazy message plane: record construction, typed field
// access, reusable object scratch, batch insert. No JSON is produced.
func runTyped(msgs []*jsonmsg.Message, cl *dsos.Client) error {
	var objs []sos.Object
	for _, m := range msgs {
		r := event.NewRecord(m, jsonmsg.FastEncoder{})
		fields, err := r.Fields()
		if err != nil {
			return err
		}
		objs = dsos.AppendObjects(objs[:0], fields)
		if err := cl.InsertBatch(dsos.DarshanSchemaName, objs); err != nil {
			return err
		}
	}
	return nil
}

// pubPool supplies publisher-side slabs: the sender wraps typed messages
// in slab-owned records (zero allocation) that live only until the frame
// is encoded.
var pubPool event.SlabPool

// batchWire is one shard's reusable wire-path state: the frame scratch,
// the per-connection decoder (interner + payload buffer), the ingest
// arena and the object batch. Everything steady-state is reused; this is
// the shape the refactor exists to measure.
type batchWire struct {
	dec   *ldms.BatchDecoder
	arena *dsos.RowArena
	frame bytes.Buffer
	rd    bytes.Reader
	objs  []sos.Object
}

func newBatchWire() *batchWire {
	return &batchWire{dec: ldms.NewBatchDecoder(), arena: dsos.NewRowArena()}
}

// flush pushes one publisher batch across the in-memory wire: encode to
// a real batch frame, decode into a pooled slab, arena-ingest every row,
// one placement-preserving InsertBatch for the whole frame, release the
// slab.
func (w *batchWire) flush(cl *dsos.Client, batch []streams.Message) error {
	if len(batch) == 0 {
		return nil
	}
	w.frame.Reset()
	if err := ldms.WriteBatchFrame(&w.frame, batch); err != nil {
		return err
	}
	w.rd.Reset(w.frame.Bytes())
	decoded, slab, err := w.dec.ReadBatchFrameSlab(&w.rd)
	if err != nil {
		return err
	}
	w.objs = w.objs[:0]
	for i := range decoded {
		fields, err := event.Fields(decoded[i])
		if err != nil {
			slab.Release()
			return err
		}
		w.objs = w.arena.AppendObjects(w.objs, fields)
	}
	err = cl.InsertBatch(dsos.DarshanSchemaName, w.objs)
	slab.Release()
	return err
}

// runTypedBatch additionally pushes every record through the batched TCP
// frame codec (encode + decode in memory) before ingest, measuring the
// full wire-crossing typed path: slab-wrapped publisher records, pooled
// frame buffers, slab decode with string interning, arena ingest, one
// batch insert per frame.
func runTypedBatch(msgs []*jsonmsg.Message, cl *dsos.Client, batchSize int) error {
	w := newBatchWire()
	batch := make([]streams.Message, 0, batchSize)
	for start := 0; start < len(msgs); start += batchSize {
		end := start + batchSize
		if end > len(msgs) {
			end = len(msgs)
		}
		pub := pubPool.Get()
		batch = batch[:0]
		for _, m := range msgs[start:end] {
			batch = append(batch, streams.Message{
				Tag: dsos.DarshanSchemaName, Type: streams.TypeJSON,
				Record:   pub.Wrap(m, jsonmsg.FastEncoder{}),
				Producer: m.ProducerName, Seq: m.Seq,
			})
		}
		err := w.flush(cl, batch)
		pub.Release()
		if err != nil {
			return err
		}
	}
	return nil
}

// modeRun is one benchmarked pipeline shape.
type modeRun struct {
	mode string
	run  func([]*jsonmsg.Message, *dsos.Client) error
}

// measureAll times every mode over reps runs against fresh sinks and
// returns the best (lowest ns/event) rep per mode. Reps are interleaved
// across modes — rep 0 of every mode, then rep 1, and so on — so slow
// environmental drift (GC pacing, frequency scaling, a noisy neighbour
// on a shared core) lands on every mode equally instead of biasing
// whichever mode happened to run last; best-of-reps then sheds the
// remaining scheduler noise.
func measureAll(msgs []*jsonmsg.Message, reps int, modes []modeRun) ([]Result, error) {
	best := make([]Result, len(modes))
	for i, m := range modes {
		best[i] = Result{Mode: m.mode, Events: len(msgs)}
	}
	for rep := 0; rep < reps; rep++ {
		for i, m := range modes {
			cl, err := newSink()
			if err != nil {
				return nil, err
			}
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			if err := m.run(msgs, cl); err != nil {
				return nil, fmt.Errorf("%s: %w", m.mode, err)
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			ns := float64(elapsed.Nanoseconds()) / float64(len(msgs))
			if best[i].NsPerEvent == 0 || ns < best[i].NsPerEvent {
				best[i].NsPerEvent = ns
				best[i].EventsPerSec = 1e9 / ns
				best[i].AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(len(msgs))
			}
		}
	}
	return best, nil
}

// runSharded runs the batched wire pipeline across shards independent
// ingest shards — each gets a contiguous slice of the stream, its own
// sink cluster, decoder, interner and arena — and returns the wall-clock
// elapsed time for the whole stream.
func runSharded(msgs []*jsonmsg.Message, shards, batchSize int) (time.Duration, error) {
	sinks := make([]*dsos.Client, shards)
	for i := range sinks {
		cl, err := newSink()
		if err != nil {
			return 0, err
		}
		sinks[i] = cl
	}
	per := (len(msgs) + shards - 1) / shards
	errs := make([]error, shards)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < shards; i++ {
		lo := i * per
		hi := lo + per
		if lo >= len(msgs) {
			break
		}
		if hi > len(msgs) {
			hi = len(msgs)
		}
		wg.Add(1)
		go func(i int, part []*jsonmsg.Message) {
			defer wg.Done()
			errs[i] = runTypedBatch(part, sinks[i], batchSize)
		}(i, msgs[lo:hi])
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed, nil
}

// RunScaling measures the batched pipeline at each shard count (best of
// reps), producing the multi-core series of the pipeline panel.
func RunScaling(seed uint64, events, reps, batchSize int, shards []int) ([]ScalingPoint, error) {
	msgs := genMessages(seed, events)
	points := make([]ScalingPoint, 0, len(shards))
	for _, n := range shards {
		var best time.Duration
		for rep := 0; rep < reps; rep++ {
			runtime.GC()
			elapsed, err := runSharded(msgs, n, batchSize)
			if err != nil {
				return nil, fmt.Errorf("scaling %d shards: %w", n, err)
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		ns := float64(best.Nanoseconds()) / float64(len(msgs))
		points = append(points, ScalingPoint{Shards: n, NsPerEvent: ns, EventsPerSec: 1e9 / ns})
	}
	return points, nil
}

// DefaultShards is the multi-core series measured by Run.
var DefaultShards = []int{1, 2, 4, 8}

// Run benchmarks all three pipeline shapes over the same seeded stream,
// plus the multi-core scaling series of the batched path.
func Run(seed uint64, events, reps, batchSize int) (*Report, error) {
	return RunShards(seed, events, reps, batchSize, DefaultShards)
}

// RunShards is Run with an explicit shard series (nil skips scaling).
func RunShards(seed uint64, events, reps, batchSize int, shards []int) (*Report, error) {
	msgs := genMessages(seed, events)
	rep := &Report{Seed: seed, Events: events, Reps: reps}

	results, err := measureAll(msgs, reps, []modeRun{
		{"legacy-encode-reparse", runLegacy},
		{"typed-lazy", runTyped},
		{"typed-batch-wire", func(ms []*jsonmsg.Message, cl *dsos.Client) error { return runTypedBatch(ms, cl, batchSize) }},
	})
	if err != nil {
		return nil, err
	}
	legacy, typed, batch := results[0], results[1], results[2]
	rep.Results = results
	rep.SpeedupTyped = typed.EventsPerSec / legacy.EventsPerSec
	rep.SpeedupBatch = batch.EventsPerSec / legacy.EventsPerSec
	rep.BatchVsTyped = batch.EventsPerSec / typed.EventsPerSec
	if len(shards) > 0 {
		rep.Scaling, err = RunScaling(seed, events, reps, batchSize, shards)
		if err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// Render formats the report as the pipeline panel.
func Render(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pipeline throughput: connector->DSOS message plane (%d events, best of %d reps)\n", r.Events, r.Reps)
	fmt.Fprintf(&b, "%-24s %14s %12s %14s\n", "mode", "events/sec", "ns/event", "allocs/event")
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%-24s %14.0f %12.0f %14.1f\n",
			res.Mode, res.EventsPerSec, res.NsPerEvent, res.AllocsPerEvent)
	}
	fmt.Fprintf(&b, "speedup typed-lazy vs legacy:       %.2fx\n", r.SpeedupTyped)
	fmt.Fprintf(&b, "speedup typed-batch-wire vs legacy: %.2fx\n", r.SpeedupBatch)
	fmt.Fprintf(&b, "speedup typed-batch-wire vs typed:  %.2fx\n", r.BatchVsTyped)
	if len(r.Scaling) > 0 {
		fmt.Fprintf(&b, "multi-core scaling (typed-batch-wire):\n")
		fmt.Fprintf(&b, "%-24s %14s %12s\n", "shards", "events/sec", "ns/event")
		for _, p := range r.Scaling {
			fmt.Fprintf(&b, "%-24d %14.0f %12.0f\n", p.Shards, p.EventsPerSec, p.NsPerEvent)
		}
	}
	return b.String()
}

// WriteJSON writes the report to path.
func WriteJSON(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
