// Package pipebench measures the real (wall-clock) throughput of the
// connector→store message plane in three shapes:
//
//   - legacy: the pre-typed pipeline — JSON is encoded eagerly at the
//     connector, re-parsed at the store, and each row is inserted
//     individually (the parse-at-store hop this refactor deleted);
//   - typed: the lazy message plane — one typed record flows end to end,
//     no JSON is ever produced, rows are batch-inserted;
//   - typed-batch: typed records additionally cross an in-memory wire via
//     the batched TCP frame codec (compact binary, no JSON) before ingest.
//
// Unlike every other panel, these numbers are wall-clock and host-
// dependent, so the pipeline panel is excluded from `-only all` and its
// JSON artifact is a sample, not a golden file. The *simulated* overhead
// charged to ranks (Encoder.SimCost) is untouched by this refactor —
// pipebench exists to show the real-machine win, the seeded tables prove
// the determinism contract held.
package pipebench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"darshanldms/internal/dsos"
	"darshanldms/internal/event"
	"darshanldms/internal/jsonmsg"
	"darshanldms/internal/ldms"
	"darshanldms/internal/rng"
	"darshanldms/internal/sos"
	"darshanldms/internal/streams"
)

// Result is one pipeline shape's measured throughput (best of reps).
type Result struct {
	Mode           string  `json:"mode"`
	Events         int     `json:"events"`
	NsPerEvent     float64 `json:"ns_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// Report is the full benchmark output written to BENCH_pipeline.json.
type Report struct {
	Seed         uint64   `json:"seed"`
	Events       int      `json:"events"`
	Reps         int      `json:"reps"`
	Results      []Result `json:"results"`
	SpeedupTyped float64  `json:"speedup_typed_vs_legacy"`
	SpeedupBatch float64  `json:"speedup_typed_batch_vs_legacy"`
}

// genMessages builds the seeded event stream every mode consumes: the
// connector's Table I shape with Quant6-quantized floats, exactly what
// FromEvent emits.
func genMessages(seed uint64, n int) []*jsonmsg.Message {
	r := rng.New(seed)
	ops := []string{"write", "read", "open", "close"}
	msgs := make([]*jsonmsg.Message, 0, n)
	for i := 0; i < n; i++ {
		msgs = append(msgs, &jsonmsg.Message{
			UID: 99066, Exe: "/projects/hacc/hacc-io", JobID: int64(1 + r.Intn(3)),
			Rank: r.Intn(64), ProducerName: "nid00040", File: "/lscratch/out.dat",
			RecordID: uint64(r.Intn(16)), Module: "POSIX", Type: jsonmsg.TypeMOD,
			MaxByte: int64(r.Intn(1 << 24)), Switches: int64(r.Intn(2)),
			Flushes: int64(r.Intn(3)), Cnt: 1, Op: ops[r.Intn(len(ops))],
			Seg: []jsonmsg.Segment{{
				DataSet: jsonmsg.NA, PtSel: -1, IrregHSlab: -1, RegHSlab: -1,
				NDims: -1, NPoints: -1, Off: int64(i) * 4096, Len: int64(4096 * (1 + r.Intn(4))),
				Dur:       jsonmsg.Quant6(r.Float64() * 0.01),
				Timestamp: jsonmsg.Quant6(1.6e9 + float64(i)*0.25 + r.Float64()),
			}},
			Seq: uint64(i + 1),
		})
	}
	return msgs
}

func newSink() (*dsos.Client, error) {
	c := dsos.NewCluster(4, "darshan_data")
	if err := dsos.SetupDarshan(c); err != nil {
		return nil, err
	}
	return dsos.Connect(c), nil
}

// runLegacy is the deleted pipeline, reconstructed inline for comparison:
// eager encode at the connector, jsonmsg.Parse at the store, one Insert
// per row.
func runLegacy(msgs []*jsonmsg.Message, cl *dsos.Client) error {
	enc := jsonmsg.FastEncoder{}
	for _, m := range msgs {
		payload := enc.Encode(m)
		parsed, err := jsonmsg.Parse(payload)
		if err != nil {
			return err
		}
		for _, obj := range dsos.ObjectsFromMessage(parsed) {
			if err := cl.Insert(dsos.DarshanSchemaName, obj); err != nil {
				return err
			}
		}
	}
	return nil
}

// runTyped is the lazy message plane: record construction, typed field
// access, reusable object scratch, batch insert. No JSON is produced.
func runTyped(msgs []*jsonmsg.Message, cl *dsos.Client) error {
	var objs []sos.Object
	for _, m := range msgs {
		r := event.NewRecord(m, jsonmsg.FastEncoder{})
		fields, err := r.Fields()
		if err != nil {
			return err
		}
		objs = dsos.AppendObjects(objs[:0], fields)
		if err := cl.InsertBatch(dsos.DarshanSchemaName, objs); err != nil {
			return err
		}
	}
	return nil
}

// runTypedBatch additionally pushes every record through the batched TCP
// frame codec (encode + decode in memory) before ingest, measuring the
// full wire-crossing typed path.
func runTypedBatch(msgs []*jsonmsg.Message, cl *dsos.Client, batchSize int) error {
	var objs []sos.Object
	var wire []byte
	batch := make([]streams.Message, 0, batchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		wire = ldms.AppendBatch(wire[:0], batch)
		decoded, err := ldms.DecodeBatch(wire)
		if err != nil {
			return err
		}
		for _, dm := range decoded {
			fields, err := event.Fields(dm)
			if err != nil {
				return err
			}
			objs = dsos.AppendObjects(objs[:0], fields)
			if err := cl.InsertBatch(dsos.DarshanSchemaName, objs); err != nil {
				return err
			}
		}
		batch = batch[:0]
		return nil
	}
	for _, m := range msgs {
		batch = append(batch, streams.Message{
			Tag: dsos.DarshanSchemaName, Type: streams.TypeJSON,
			Record:   event.NewRecord(m, jsonmsg.FastEncoder{}),
			Producer: m.ProducerName, Seq: m.Seq,
		})
		if len(batch) == batchSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// measure times one mode over reps runs against fresh sinks and returns
// the best (lowest ns/event) rep — standard microbenchmark practice to
// shed scheduler noise.
func measure(mode string, msgs []*jsonmsg.Message, reps int, run func([]*jsonmsg.Message, *dsos.Client) error) (Result, error) {
	best := Result{Mode: mode, Events: len(msgs)}
	for rep := 0; rep < reps; rep++ {
		cl, err := newSink()
		if err != nil {
			return best, err
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := run(msgs, cl); err != nil {
			return best, fmt.Errorf("%s: %w", mode, err)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		ns := float64(elapsed.Nanoseconds()) / float64(len(msgs))
		if best.NsPerEvent == 0 || ns < best.NsPerEvent {
			best.NsPerEvent = ns
			best.EventsPerSec = 1e9 / ns
			best.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(len(msgs))
		}
	}
	return best, nil
}

// Run benchmarks all three pipeline shapes over the same seeded stream.
func Run(seed uint64, events, reps, batchSize int) (*Report, error) {
	msgs := genMessages(seed, events)
	rep := &Report{Seed: seed, Events: events, Reps: reps}

	legacy, err := measure("legacy-encode-reparse", msgs, reps, runLegacy)
	if err != nil {
		return nil, err
	}
	typed, err := measure("typed-lazy", msgs, reps, runTyped)
	if err != nil {
		return nil, err
	}
	batch, err := measure("typed-batch-wire", msgs, reps,
		func(ms []*jsonmsg.Message, cl *dsos.Client) error { return runTypedBatch(ms, cl, batchSize) })
	if err != nil {
		return nil, err
	}
	rep.Results = []Result{legacy, typed, batch}
	rep.SpeedupTyped = typed.EventsPerSec / legacy.EventsPerSec
	rep.SpeedupBatch = batch.EventsPerSec / legacy.EventsPerSec
	return rep, nil
}

// Render formats the report as the pipeline panel.
func Render(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pipeline throughput: connector->DSOS message plane (%d events, best of %d reps)\n", r.Events, r.Reps)
	fmt.Fprintf(&b, "%-24s %14s %12s %14s\n", "mode", "events/sec", "ns/event", "allocs/event")
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%-24s %14.0f %12.0f %14.1f\n",
			res.Mode, res.EventsPerSec, res.NsPerEvent, res.AllocsPerEvent)
	}
	fmt.Fprintf(&b, "speedup typed-lazy vs legacy:       %.2fx\n", r.SpeedupTyped)
	fmt.Fprintf(&b, "speedup typed-batch-wire vs legacy: %.2fx\n", r.SpeedupBatch)
	return b.String()
}

// WriteJSON writes the report to path.
func WriteJSON(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
