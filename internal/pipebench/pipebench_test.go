package pipebench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"darshanldms/internal/dsos"
	"darshanldms/internal/jsonmsg"
)

// TestRunSmoke exercises all three pipeline shapes on a small stream. It
// asserts correctness properties only — the ≥3x speedup gate lives in
// `make bench-smoke`, where the stream is large enough for stable timing.
func TestRunSmoke(t *testing.T) {
	r, err := Run(2022, 2000, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(r.Results))
	}
	for _, res := range r.Results {
		if res.EventsPerSec <= 0 || res.NsPerEvent <= 0 {
			t.Fatalf("%s: degenerate measurement: %+v", res.Mode, res)
		}
	}
	if r.SpeedupTyped <= 0 || r.SpeedupBatch <= 0 {
		t.Fatalf("degenerate speedups: %+v", r)
	}

	path := filepath.Join(t.TempDir(), "BENCH_pipeline.json")
	if err := WriteJSON(path, r); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if back.Events != 2000 || len(back.Results) != 3 {
		t.Fatalf("artifact round trip lost data: %+v", back)
	}
}

// TestModesIngestIdenticalRows pins that all three shapes store the same
// number of rows from the same seeded stream (value identity is pinned by
// the dsos golden ingest test).
func TestModesIngestIdenticalRows(t *testing.T) {
	msgs := genMessages(7, 500)
	modes := map[string]func([]*jsonmsg.Message, *dsos.Client) error{
		"legacy": runLegacy,
		"typed":  runTyped,
		"batch": func(ms []*jsonmsg.Message, cl *dsos.Client) error {
			return runTypedBatch(ms, cl, 8)
		},
	}
	for _, name := range []string{"legacy", "typed", "batch"} {
		cl, err := newSink()
		if err != nil {
			t.Fatal(err)
		}
		if err := modes[name](msgs, cl); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := cl.Count(dsos.DarshanSchemaName); got != 500 {
			t.Fatalf("%s stored %d rows, want 500", name, got)
		}
	}
}
